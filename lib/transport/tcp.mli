(** Round-based TCP congestion-control model (Reno and BIC).

    The paper's data plane (section 5.4) runs bulk transfers over TCP; its
    motivation (section 1) is that TCP's congestion control shares deep
    bottlenecks poorly for bulk data in large bandwidth-delay-product
    networks, while the overlay's enforced reservations let "well tuned
    TCP flows fully utilize their allocated capacity".  This module
    reproduces those dynamics with the standard fluid/round abstraction:
    time advances in RTT-sized rounds; each flow sends a window of
    segments per round into a shared drop-tail bottleneck; overflow
    segments are dropped in proportion to the offered excess and trigger
    the control law (slow start, congestion avoidance; BIC's binary
    increase).  Units: segments and segments/round. *)

type algorithm =
  | Reno  (** slow start then AIMD: +1 segment/round, halve on loss *)
  | Bic
      (** binary increase: on loss remember [w_max], halve; then grow
          toward [w_max] by binary search and beyond by max-probing —
          the BIC behaviour of Xu et al. (paper reference [22]) *)

type flow_spec = {
  algorithm : algorithm;
  volume : float;  (** segments to deliver; [infinity] = long-lived *)
  start_round : int;  (** round at which the flow begins *)
  rate_cap : float option;
      (** segments/round ceiling (a token-bucket-shaped reservation);
          [None] = unshaped *)
}

val flow : ?algorithm:algorithm -> ?start_round:int -> ?rate_cap:float ->
  volume:float -> unit -> flow_spec

type flow_report = {
  spec : flow_spec;
  delivered : float;  (** segments that made it through *)
  finished_round : int option;  (** [None] if the volume never completed *)
  loss_events : int;  (** multiplicative-decrease episodes *)
  mean_rate : float;  (** delivered / active rounds *)
}

type result = {
  flows : flow_report list;  (** in input order *)
  rounds : int;
  bottleneck_utilization : float;
      (** delivered segments / (capacity × rounds with ≥1 active flow),
          clamped to 1 (queued excess drains within the fluid round) *)
  total_drops : float;
  jain_fairness : float;
      (** Jain's index over the flows' mean rates; 1 = perfectly fair *)
}

val simulate :
  ?buffer:float ->
  capacity:float ->
  max_rounds:int ->
  flow_spec list ->
  result
(** Run until every finite-volume flow completes or [max_rounds] elapse.
    [capacity] is the bottleneck rate in segments/round (> 0); [buffer]
    is the drop-tail queue in segments (default [capacity], i.e. one
    bandwidth-delay product).  Deterministic. *)
