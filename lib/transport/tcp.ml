type algorithm = Reno | Bic

type flow_spec = {
  algorithm : algorithm;
  volume : float;
  start_round : int;
  rate_cap : float option;
}

let flow ?(algorithm = Reno) ?(start_round = 0) ?rate_cap ~volume () =
  if volume <= 0. then invalid_arg "Tcp.flow: volume must be positive";
  if start_round < 0 then invalid_arg "Tcp.flow: start_round must be non-negative";
  (match rate_cap with
  | Some c when c <= 0. -> invalid_arg "Tcp.flow: rate_cap must be positive"
  | _ -> ());
  { algorithm; volume; start_round; rate_cap }

type flow_report = {
  spec : flow_spec;
  delivered : float;
  finished_round : int option;
  loss_events : int;
  mean_rate : float;
}

type result = {
  flows : flow_report list;
  rounds : int;
  bottleneck_utilization : float;
  total_drops : float;
  jain_fairness : float;
}

(* Per-flow congestion state.  Windows are floats (fluid segments). *)
type state = {
  spec : flow_spec;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable w_max : float;  (* BIC: window before the last loss *)
  mutable remaining : float;
  mutable delivered : float;
  mutable finished : int option;
  mutable losses : int;
  mutable active_rounds : int;
}

let initial_window = 2.0

(* BIC parameters (scaled-down textbook values). *)
let bic_smax = 16.0
let bic_beta = 0.8

let grow st =
  match st.spec.algorithm with
  | Reno ->
      if st.cwnd < st.ssthresh then st.cwnd <- st.cwnd *. 2.0 (* slow start *)
      else st.cwnd <- st.cwnd +. 1.0 (* congestion avoidance *)
  | Bic ->
      if st.cwnd < st.ssthresh then st.cwnd <- st.cwnd *. 2.0
      else if st.cwnd < st.w_max then begin
        (* binary search toward the pre-loss window *)
        let step = Float.min bic_smax ((st.w_max -. st.cwnd) /. 2.0) in
        st.cwnd <- st.cwnd +. Float.max 1.0 step
      end
      else
        (* max probing beyond w_max *)
        st.cwnd <- st.cwnd +. 1.0

let on_loss st =
  st.losses <- st.losses + 1;
  (match st.spec.algorithm with
  | Reno ->
      st.ssthresh <- Float.max initial_window (st.cwnd /. 2.0);
      st.cwnd <- st.ssthresh
  | Bic ->
      st.w_max <- st.cwnd;
      st.ssthresh <- Float.max initial_window (st.cwnd *. bic_beta);
      st.cwnd <- st.ssthresh);
  if st.cwnd < 1.0 then st.cwnd <- 1.0

let simulate ?buffer ~capacity ~max_rounds specs =
  if capacity <= 0. then invalid_arg "Tcp.simulate: capacity must be positive";
  if max_rounds <= 0 then invalid_arg "Tcp.simulate: max_rounds must be positive";
  let buffer = match buffer with Some b -> b | None -> capacity in
  if buffer < 0. then invalid_arg "Tcp.simulate: negative buffer";
  let states =
    List.map
      (fun spec ->
        {
          spec;
          cwnd = initial_window;
          ssthresh = infinity;
          w_max = infinity;
          remaining = spec.volume;
          delivered = 0.0;
          finished = None;
          losses = 0;
          active_rounds = 0;
        })
      specs
  in
  let arr = Array.of_list states in
  let total_drops = ref 0.0 in
  let busy_rounds = ref 0 and delivered_total = ref 0.0 in
  let round = ref 0 in
  let unfinished () =
    Array.exists (fun st -> st.finished = None && st.remaining > 0.) arr
  in
  while !round < max_rounds && unfinished () do
    let r = !round in
    (* Offered load this round: window-limited, volume-limited, and capped
       by any shaping reservation. *)
    let offers =
      Array.map
        (fun st ->
          if st.finished <> None || r < st.spec.start_round then 0.0
          else begin
            st.active_rounds <- st.active_rounds + 1;
            let w = Float.min st.cwnd st.remaining in
            match st.spec.rate_cap with Some cap -> Float.min w cap | None -> w
          end)
        arr
    in
    let offered = Array.fold_left ( +. ) 0.0 offers in
    if offered > 0. then incr busy_rounds;
    let deliverable = capacity +. buffer in
    let overflow = offered > deliverable in
    let scale = if overflow then deliverable /. offered else 1.0 in
    Array.iteri
      (fun i st ->
        let sent = offers.(i) in
        if sent > 0. then begin
          (* Everything above the scaled share is dropped; goodput is
             additionally limited to the link capacity share (the buffered
             excess drains within the round in this fluid abstraction). *)
          let through = sent *. scale in
          let drops = sent -. through in
          total_drops := !total_drops +. drops;
          st.remaining <- Float.max 0.0 (st.remaining -. through);
          st.delivered <- st.delivered +. through;
          delivered_total := !delivered_total +. through;
          if st.remaining <= 1e-9 && st.finished = None then st.finished <- Some r
          else if drops > 1e-9 then on_loss st
          else grow st
        end)
      arr;
    incr round
  done;
  let reports =
    List.map
      (fun st ->
        {
          spec = st.spec;
          delivered = st.delivered;
          finished_round = st.finished;
          loss_events = st.losses;
          mean_rate =
            (if st.active_rounds = 0 then 0.0
             else st.delivered /. float_of_int st.active_rounds);
        })
      states
  in
  let rates = List.map (fun f -> f.mean_rate) reports in
  let jain =
    let n = List.length rates in
    if n = 0 then 1.0
    else
      let s = List.fold_left ( +. ) 0.0 rates in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 rates in
      if s2 = 0. then 1.0 else s *. s /. (float_of_int n *. s2)
  in
  {
    flows = reports;
    rounds = !round;
    bottleneck_utilization =
      (if !busy_rounds = 0 then 0.0
       else Float.min 1.0 (!delivered_total /. (capacity *. float_of_int !busy_rounds)));
    total_drops = !total_drops;
    jain_fairness = jain;
  }
