module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request

type flow_report = {
  request : Request.t;
  finish : float;
  deadline_met : bool;
  stretch : float;
  mean_rate : float;
}

type result = {
  flows : flow_report list;
  deadline_miss_rate : float;
  mean_stretch : float;
  max_concurrency : int;
  events : int;
}

type active = { req : Request.t; mutable remaining : float }

let simulate fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Fluid: request %d routed on unknown port" r.id))
    requests;
  let caps_in = Array.init (Fabric.ingress_count fabric) (Fabric.ingress_capacity fabric) in
  let caps_out = Array.init (Fabric.egress_count fabric) (Fabric.egress_capacity fabric) in
  let pending =
    ref
      (List.sort
         (fun (a : Request.t) (b : Request.t) ->
           match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
         requests)
  in
  let active : active list ref = ref [] in
  let reports = ref [] in
  let events = ref 0 in
  let max_concurrency = ref 0 in
  let clock = ref 0.0 in
  let current_rates () =
    let arr = Array.of_list !active in
    let flows =
      Array.map
        (fun a ->
          { Maxmin.ingress = a.req.Request.ingress; egress = a.req.Request.egress;
            max_rate = a.req.Request.max_rate })
        arr
    in
    (arr, Maxmin.rates ~caps_in ~caps_out flows)
  in
  let finish_flow a t =
    active := List.filter (fun b -> b != a) !active;
    let r = a.req in
    let elapsed = t -. r.Request.ts in
    reports :=
      {
        request = r;
        finish = t;
        deadline_met = t <= r.Request.tf *. (1. +. 1e-9);
        stretch = elapsed /. (r.Request.tf -. r.Request.ts);
        mean_rate = (if elapsed > 0. then r.Request.volume /. elapsed else r.Request.max_rate);
      }
      :: !reports
  in
  let rec step () =
    match (!pending, !active) with
    | [], [] -> ()
    | _ ->
        incr events;
        let arr, rates = current_rates () in
        (* Earliest completion among active flows at current rates. *)
        let next_completion = ref infinity in
        Array.iteri
          (fun i a ->
            if rates.(i) > 0. then
              next_completion := Float.min !next_completion (!clock +. (a.remaining /. rates.(i))))
          arr;
        let next_arrival =
          match !pending with [] -> infinity | (r : Request.t) :: _ -> Float.max !clock r.ts
        in
        let t = Float.min !next_completion next_arrival in
        if not (Float.is_finite t) then
          (* No active flow can progress and nothing arrives: should be
             impossible with positive capacities; fail loudly rather than
             spin. *)
          invalid_arg "Fluid.simulate: stalled simulation"
        else begin
          (* Drain work done on [clock, t). *)
          let dt = t -. !clock in
          Array.iteri
            (fun i a -> a.remaining <- Float.max 0.0 (a.remaining -. (rates.(i) *. dt)))
            arr;
          clock := t;
          (* Complete finished flows (floating-point exact at the min). *)
          Array.iter (fun a -> if a.remaining <= 1e-9 then finish_flow a t) arr;
          (* Admit newly arrived flows. *)
          let rec admit () =
            match !pending with
            | (r : Request.t) :: rest when r.ts <= !clock +. 1e-12 ->
                pending := rest;
                active := { req = r; remaining = r.volume } :: !active;
                admit ()
            | _ -> ()
          in
          admit ();
          max_concurrency := max !max_concurrency (List.length !active);
          step ()
        end
  in
  (* Start the clock at the first arrival. *)
  (match !pending with [] -> () | r :: _ -> clock := r.Request.ts);
  step ();
  let flows =
    List.sort (fun a b -> Request.compare a.request b.request) !reports
  in
  let n = List.length flows in
  let misses = List.length (List.filter (fun f -> not f.deadline_met) flows) in
  let mean_stretch =
    if n = 0 then 0.0
    else List.fold_left (fun acc f -> acc +. f.stretch) 0.0 flows /. float_of_int n
  in
  {
    flows;
    deadline_miss_rate = (if n = 0 then 0.0 else float_of_int misses /. float_of_int n);
    mean_stretch;
    max_concurrency = !max_concurrency;
    events = !events;
  }
