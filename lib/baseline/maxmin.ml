type flow = { ingress : int; egress : int; max_rate : float }

let check ~caps_in ~caps_out flows =
  Array.iter (fun c -> if c <= 0. then invalid_arg "Maxmin: capacities must be positive") caps_in;
  Array.iter (fun c -> if c <= 0. then invalid_arg "Maxmin: capacities must be positive") caps_out;
  Array.iter
    (fun f ->
      if f.ingress < 0 || f.ingress >= Array.length caps_in then invalid_arg "Maxmin: bad ingress";
      if f.egress < 0 || f.egress >= Array.length caps_out then invalid_arg "Maxmin: bad egress";
      if f.max_rate <= 0. then invalid_arg "Maxmin: max_rate must be positive")
    flows

(* Level-based progressive filling.  All unfrozen flows always share one
   common rate level L (they start at 0 and rise in lockstep), so instead of
   iterating per-flow we jump L to the next event: either the smallest
   unfrozen per-flow cap (flows processed through a pointer into the
   cap-sorted order) or the first port saturation
   (L_p = (cap_p - frozen_p) / n_p).  Each round saturates a port or
   advances the cap pointer, so the loop runs O(ports + flows) rounds of
   O(ports) work — far below the naive O(flows²). *)
let rates ~caps_in ~caps_out flows =
  check ~caps_in ~caps_out flows;
  let nf = Array.length flows in
  let rate = Array.make nf 0.0 in
  if nf = 0 then rate
  else begin
    let m = Array.length caps_in and n = Array.length caps_out in
    let frozen = Array.make nf false in
    (* Per-port: number of unfrozen flows and total rate of frozen flows. *)
    let live_in = Array.make m 0 and live_out = Array.make n 0 in
    let frozen_in = Array.make m 0.0 and frozen_out = Array.make n 0.0 in
    let flows_in = Array.make m [] and flows_out = Array.make n [] in
    Array.iteri
      (fun i f ->
        live_in.(f.ingress) <- live_in.(f.ingress) + 1;
        live_out.(f.egress) <- live_out.(f.egress) + 1;
        flows_in.(f.ingress) <- i :: flows_in.(f.ingress);
        flows_out.(f.egress) <- i :: flows_out.(f.egress))
      flows;
    let by_cap = Array.init nf Fun.id in
    Array.sort (fun a b -> Float.compare flows.(a).max_rate flows.(b).max_rate) by_cap;
    let cap_ptr = ref 0 in
    let live = ref nf in
    let level = ref 0.0 in
    (* Freeze flow i at rate r: move its contribution from live to frozen on
       both its ports. *)
    let freeze i r =
      if not frozen.(i) then begin
        frozen.(i) <- true;
        rate.(i) <- r;
        let f = flows.(i) in
        live_in.(f.ingress) <- live_in.(f.ingress) - 1;
        live_out.(f.egress) <- live_out.(f.egress) - 1;
        frozen_in.(f.ingress) <- frozen_in.(f.ingress) +. r;
        frozen_out.(f.egress) <- frozen_out.(f.egress) +. r;
        decr live
      end
    in
    while !live > 0 do
      (* Next port-saturation level. *)
      let next_port = ref infinity in
      for p = 0 to m - 1 do
        if live_in.(p) > 0 then
          next_port :=
            Float.min !next_port ((caps_in.(p) -. frozen_in.(p)) /. float_of_int live_in.(p))
      done;
      for p = 0 to n - 1 do
        if live_out.(p) > 0 then
          next_port :=
            Float.min !next_port ((caps_out.(p) -. frozen_out.(p)) /. float_of_int live_out.(p))
      done;
      (* Next per-flow-cap level (skip flows frozen by port saturation). *)
      while !cap_ptr < nf && frozen.(by_cap.(!cap_ptr)) do
        incr cap_ptr
      done;
      let next_cap = if !cap_ptr < nf then flows.(by_cap.(!cap_ptr)).max_rate else infinity in
      if next_cap <= !next_port then begin
        (* Freeze every unfrozen flow whose cap is reached at this level. *)
        level := Float.max !level next_cap;
        while
          !cap_ptr < nf
          && (frozen.(by_cap.(!cap_ptr)) || flows.(by_cap.(!cap_ptr)).max_rate <= !level +. 1e-15)
        do
          let i = by_cap.(!cap_ptr) in
          if not frozen.(i) then freeze i flows.(i).max_rate;
          incr cap_ptr
        done
      end
      else begin
        (* A port saturates first: freeze all its unfrozen flows at that
           level.  Guard against float stagnation with max. *)
        level := Float.max !level !next_port;
        let saturated_at_level p caps frozen_p live_p =
          live_p.(p) > 0
          && (caps.(p) -. frozen_p.(p)) /. float_of_int live_p.(p) <= !level +. 1e-12
        in
        for p = 0 to m - 1 do
          if saturated_at_level p caps_in frozen_in live_in then
            List.iter (fun i -> if not frozen.(i) then freeze i !level) flows_in.(p)
        done;
        for p = 0 to n - 1 do
          if saturated_at_level p caps_out frozen_out live_out then
            List.iter (fun i -> if not frozen.(i) then freeze i !level) flows_out.(p)
        done
      end
    done;
    rate
  end

let is_maxmin ?(eps = 1e-6) ~caps_in ~caps_out flows rate =
  let n = Array.length flows in
  if Array.length rate <> n then false
  else begin
    let used_in = Array.make (Array.length caps_in) 0.0 in
    let used_out = Array.make (Array.length caps_out) 0.0 in
    Array.iteri
      (fun i f ->
        used_in.(f.ingress) <- used_in.(f.ingress) +. rate.(i);
        used_out.(f.egress) <- used_out.(f.egress) +. rate.(i))
      flows;
    let within_caps =
      Array.for_all2 (fun used cap -> used <= cap *. (1. +. eps)) used_in caps_in
      && Array.for_all2 (fun used cap -> used <= cap *. (1. +. eps)) used_out caps_out
    in
    let saturated_in p = used_in.(p) >= caps_in.(p) *. (1. -. eps) in
    let saturated_out p = used_out.(p) >= caps_out.(p) *. (1. -. eps) in
    (* Bertsekas-Gallager: every flow either sits at its own cap or has a
       bottleneck — a saturated port it crosses on which it is a maximal
       flow.  This characterises the (unique) max-min fair allocation. *)
    let max_rate_through ~side p =
      let best = ref 0.0 in
      Array.iteri
        (fun j fj ->
          let crosses = match side with `In -> fj.ingress = p | `Out -> fj.egress = p in
          if crosses && rate.(j) > !best then best := rate.(j))
        flows;
      !best
    in
    let has_bottleneck i =
      let f = flows.(i) in
      rate.(i) >= f.max_rate *. (1. -. eps)
      || (saturated_in f.ingress
         && rate.(i) >= max_rate_through ~side:`In f.ingress -. (eps *. Float.max 1.0 rate.(i)))
      || (saturated_out f.egress
         && rate.(i) >= max_rate_through ~side:`Out f.egress -. (eps *. Float.max 1.0 rate.(i)))
    in
    within_caps && Array.for_all has_bottleneck (Array.init n Fun.id)
  end
