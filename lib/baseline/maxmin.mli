(** Max-min fair rate allocation by progressive filling.

    This is the bandwidth-sharing objective the paper ascribes to
    TCP-governed networks (section 1): every flow's rate rises uniformly
    until its bottleneck port saturates or its own [max_rate] cap is hit.
    Used by {!Fluid} as the "what TCP would do" surrogate that the
    admission-controlled schedulers are compared against. *)

type flow = { ingress : int; egress : int; max_rate : float }

val rates :
  caps_in:float array -> caps_out:float array -> flow array -> float array
(** Max-min fair rates, one per flow, in input order.  Requires positive
    capacities and positive [max_rate]s; raises [Invalid_argument] on bad
    ports.  Properties (tested): no port exceeds its capacity; every flow
    is bottlenecked (it sits at its [max_rate] cap or crosses a saturated
    port); the allocation is max-min fair (no flow can be raised without
    lowering a flow of smaller or equal rate). *)

val is_maxmin :
  ?eps:float -> caps_in:float array -> caps_out:float array -> flow array -> float array -> bool
(** Check the three properties above, within tolerance.  For tests. *)
