(** Fluid simulation of bulk transfers {e without} admission control — the
    paper's picture of what raw (well-behaved, max-min fair) TCP does to
    bulk grid transfers (sections 1 and 5.3).

    Every request starts transmitting at its arrival time; all concurrent
    flows share the ports max-min fairly (capped at their [MaxRate]).
    Rates are recomputed at every arrival and completion, so the trajectory
    is piecewise constant.  Nothing is ever rejected — instead transfers
    run late, and a transfer that misses its requested finish time [tf] is
    a {e deadline miss} (the paper's "bulk transfers often fail before
    ending" in overload). *)

type flow_report = {
  request : Gridbw_request.Request.t;
  finish : float;  (** completion time of the transfer *)
  deadline_met : bool;  (** [finish <= tf] (with 1e-9 relative slack) *)
  stretch : float;
      (** [(finish - ts) / (tf - ts)] — 1.0 means exactly the requested
          window; > 1 means late *)
  mean_rate : float;  (** [volume / (finish - ts)] *)
}

type result = {
  flows : flow_report list;  (** in request-id order *)
  deadline_miss_rate : float;
  mean_stretch : float;
  max_concurrency : int;  (** peak number of simultaneous flows *)
  events : int;  (** rate recomputation points *)
}

val simulate : Gridbw_topology.Fabric.t -> Gridbw_request.Request.t list -> result
(** Raises [Invalid_argument] on requests routed off the fabric. *)
