(** Crash-surviving flight recorder: a bounded span ring persisted as a
    fixed-size binary file.

    Each finished span is written as its binary frame at a rotating
    offset — one [write(2)], no fsync.  The page cache makes the file
    survive a SIGKILL of the process; it makes no power-loss promise
    (durability is the WAL's job).  Recovery scans the whole file
    torn-tolerantly (try a frame at every magic byte, CRC decides), so
    wrap-around damage to the oldest frames just drops them. *)

type t

val default_size : int
(** 1 MiB. *)

val create : ?size:int -> string -> t
(** Create (truncating) a recorder file of exactly [size] bytes.
    @raise Invalid_argument if [size] cannot hold one frame. *)

val append : t -> Span.t -> unit
(** Write one span's frame, wrapping to offset 0 when the tail is
    reached (the severed tail is zeroed).  Spans larger than the whole
    file are silently dropped. *)

val close : t -> unit

val scan : string -> (Span.t list, string) result
(** All recoverable spans, ordered by (open time, id) — oldest first. *)

val scan_string : string -> Span.t list
(** The scan itself, on bytes already read (tests). *)

val last : int -> Span.t list -> Span.t list
(** The newest [n] spans of an ordered scan, oldest first. *)
