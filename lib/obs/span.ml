(* Request-scoped tracing: one span per request, decomposed into the
   fixed serve-path stages.  Spans are deliberately flat — a record of
   stage durations, not a tree — because the serving plane has exactly
   one pipeline and a flat layout keeps the binary form fixed-size and
   the flight-recorder scan trivial.

   Timestamps come from {!now_ns}: [Unix.gettimeofday] clamped
   non-decreasing (no monotonic-clock binding in the toolchain; the
   clamp protects durations against small NTP steps, a leap backwards
   larger than a span simply truncates that span to zero). *)

module Codec = Gridbw_wire.Codec
module Frame = Gridbw_wire.Frame
module Binio = Gridbw_wire.Binio

type stage =
  | Frame_decode
  | Protocol_parse
  | Admit_search
  | Wal_append
  | Commit_fsync
  | Reply_write

let all_stages =
  [ Frame_decode; Protocol_parse; Admit_search; Wal_append; Commit_fsync; Reply_write ]

let stage_count = 6

let stage_index = function
  | Frame_decode -> 0
  | Protocol_parse -> 1
  | Admit_search -> 2
  | Wal_append -> 3
  | Commit_fsync -> 4
  | Reply_write -> 5

let stage_name = function
  | Frame_decode -> "frame_decode"
  | Protocol_parse -> "protocol_parse"
  | Admit_search -> "admit_search"
  | Wal_append -> "wal_append"
  | Commit_fsync -> "commit_fsync"
  | Reply_write -> "reply_write"

let stage_of_name = function
  | "frame_decode" -> Some Frame_decode
  | "protocol_parse" -> Some Protocol_parse
  | "admit_search" -> Some Admit_search
  | "wal_append" -> Some Wal_append
  | "commit_fsync" -> Some Commit_fsync
  | "reply_write" -> Some Reply_write
  | _ -> None

type t = {
  id : int;
  conn : int;
  mutable req : int option;
  time : float;  (* wall-clock seconds when the span opened *)
  mutable total_ns : float;
  mutable probes : int;
  durs : float array;  (* ns per stage, indexed by stage_index *)
  mutable open_ns : float;  (* now_ns at open; not serialized *)
}

(* --- clock --- *)

let last_ns = ref 0.

let now_ns () =
  let t = Unix.gettimeofday () *. 1e9 in
  if t > !last_ns then last_ns := t;
  !last_ns

(* --- lifecycle --- *)

let next_id = ref 0

let start ~conn () =
  incr next_id;
  let n = now_ns () in
  {
    id = !next_id;
    conn;
    req = None;
    time = n /. 1e9;
    total_ns = 0.;
    probes = 0;
    durs = Array.make stage_count 0.;
    open_ns = n;
  }

let make ~id ~conn ~req ~time ~total_ns ~probes ~durs =
  if Array.length durs <> stage_count then invalid_arg "Span.make: need one duration per stage";
  { id; conn; req; time; total_ns; probes; durs = Array.copy durs; open_ns = time *. 1e9 }

let record t stage ns = t.durs.(stage_index stage) <- t.durs.(stage_index stage) +. ns

let timed t stage f =
  match t with
  | None -> f ()
  | Some sp ->
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> record sp stage (now_ns () -. t0)) f

let add_probes t n = t.probes <- t.probes + n
let set_req t id = t.req <- Some id
let backdate t ns = if ns > 0. then t.open_ns <- t.open_ns -. ns
let finish t = t.total_ns <- now_ns () -. t.open_ns

(* --- accessors --- *)

let id t = t.id
let conn t = t.conn
let req t = t.req
let time t = t.time
let total_ns t = t.total_ns
let probes t = t.probes
let duration t stage = t.durs.(stage_index stage)
let stage_sum t = Array.fold_left ( +. ) 0. t.durs

let pp ppf t =
  Format.fprintf ppf "span %d conn=%d%s t=%.6f total=%.0fns probes=%d" t.id t.conn
    (match t.req with Some r -> Printf.sprintf " r%d" r | None -> "")
    t.time t.total_ns t.probes;
  List.iter
    (fun s ->
      let d = duration t s in
      if d > 0. then Format.fprintf ppf " %s=%.0fns" (stage_name s) d)
    all_stages

(* --- wire forms ---

   Same shape as Event_codec: a JSONL object ("ev":"span") for debug
   traces, and a fixed-layout binary frame under its own tag so
   [replay-trace] and the WAL scanner keep auto-detecting records they
   should skip. *)

let frame_tag = 0x04

let to_json t =
  let open Json in
  let fields =
    [ ("ev", Str "span"); ("id", Num (float_of_int t.id)); ("conn", Num (float_of_int t.conn)) ]
    @ (match t.req with Some r -> [ ("req", Num (float_of_int r)) ] | None -> [])
    @ [
        ("t", Num t.time); ("total_ns", Num t.total_ns);
        ("probes", Num (float_of_int t.probes));
      ]
    @ List.map (fun s -> (stage_name s ^ "_ns", Num (duration t s))) all_stages
  in
  Json.to_string (Obj fields)

let ( let* ) r f = Result.bind r f

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let of_json json =
  let* ev = field "ev" Json.to_str json in
  if ev <> "span" then Error ("not a span: ev=" ^ ev)
  else
    let* id = field "id" Json.to_int json in
    let* conn = field "conn" Json.to_int json in
    let req = Option.bind (Json.member "req" json) Json.to_int in
    let* time = field "t" Json.to_float json in
    let* total_ns = field "total_ns" Json.to_float json in
    let* probes = field "probes" Json.to_int json in
    let durs = Array.make stage_count 0. in
    let* () =
      List.fold_left
        (fun acc s ->
          let* () = acc in
          let* d = field (stage_name s ^ "_ns") Json.to_float json in
          durs.(stage_index s) <- d;
          Ok ())
        (Ok ()) all_stages
    in
    Ok (make ~id ~conn ~req ~time ~total_ns ~probes ~durs)

(* A cheap pre-parse test so trace readers can skip span lines without
   a full JSON parse on every event line. *)
let looks_like_json_span line =
  let n = String.length line in
  let rec find i =
    if i + 11 > n then false
    else if String.sub line i 11 = {|"ev":"span"|} then true
    else find (i + 1)
  in
  find 0

module Jsonl = struct
  type nonrec t = t

  let name = "span-jsonl"

  let encode b t =
    Buffer.add_string b (to_json t);
    Buffer.add_char b '\n'

  let decode s ~pos : t Codec.decoded =
    match String.index_from_opt s pos '\n' with
    | None -> Incomplete
    | Some nl -> (
        match Result.bind (Json.parse (String.sub s pos (nl - pos))) of_json with
        | Ok sp -> Value (sp, nl + 1)
        | Error msg -> Corrupt msg)
end

module Binary = struct
  type nonrec t = t

  let name = "span-binary"

  let encode_body b t =
    Binio.add_i64 b t.id;
    Binio.add_i64 b t.conn;
    (match t.req with
    | None -> Binio.add_u8 b 0
    | Some r ->
        Binio.add_u8 b 1;
        Binio.add_i64 b r);
    Binio.add_f64 b t.time;
    Binio.add_f64 b t.total_ns;
    Binio.add_i64 b t.probes;
    Array.iter (Binio.add_f64 b) t.durs

  exception Short

  let decode_body s =
    let pos = ref 0 in
    let len = String.length s in
    let need n = if !pos + n > len then raise Short in
    let u8 () =
      need 1;
      let v = Binio.get_u8 s !pos in
      incr pos;
      v
    in
    let i64 () =
      need 8;
      let v = Binio.get_i64 s !pos in
      pos := !pos + 8;
      v
    in
    let f64 () =
      need 8;
      let v = Binio.get_f64 s !pos in
      pos := !pos + 8;
      v
    in
    try
      let id = i64 () in
      let conn = i64 () in
      let req = match u8 () with 0 -> None | _ -> Some (i64 ()) in
      let time = f64 () in
      let total_ns = f64 () in
      let probes = i64 () in
      let durs = Array.init stage_count (fun _ -> f64 ()) in
      if !pos <> len then Error "trailing bytes in span body"
      else Ok (make ~id ~conn ~req ~time ~total_ns ~probes ~durs)
    with Short -> Error "span body too short"

  let body_of t =
    let b = Buffer.create 96 in
    encode_body b t;
    Buffer.contents b

  let of_body = decode_body

  let encode b t =
    let body = Buffer.create 96 in
    encode_body body t;
    Frame.add b ~tag:frame_tag (Buffer.contents body)

  let decode s ~pos : t Codec.decoded =
    match Frame.decode s ~pos with
    | Incomplete -> Incomplete
    | Corrupt msg -> Corrupt msg
    | Value ((tag, body), next) ->
        if tag <> frame_tag then Corrupt (Printf.sprintf "unexpected frame tag %d" tag)
        else (match decode_body body with Ok sp -> Value (sp, next) | Error msg -> Corrupt msg)
end

let sniff_decode s ~pos : t Codec.decoded =
  if pos < String.length s && Frame.is_binary s.[pos] then Binary.decode s ~pos
  else Jsonl.decode s ~pos
