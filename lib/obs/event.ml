type side = Ingress | Egress

type t =
  | Arrival of {
      time : float;
      seq : int;
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
    }
  | Accept of {
      time : float;
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
      bw : float;
      sigma : float;
      shard : int option;
    }
  | Reject of {
      time : float;
      id : int;
      reason : string;
      port : (side * int) option;
      headroom : float option;
      shard : int option;
    }
  | Preempt of { time : float; id : int; bw : float; shard : int option }
  | Reshape of {
      time : float;
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
      profile : (float * float * float) array;
      revised : (int * (float * float * float) array) array;
      shard : int option;
    }
  | Shed of { time : float; side : side; port : int; excess : float; victims : int }
  | Capacity of { time : float; side : side; port : int; capacity : float }
  | Dispatch of { time : float; pending : int }

let time = function
  | Arrival { time; _ }
  | Accept { time; _ }
  | Reject { time; _ }
  | Preempt { time; _ }
  | Reshape { time; _ }
  | Shed { time; _ }
  | Capacity { time; _ }
  | Dispatch { time; _ } -> time

let kind = function
  | Arrival _ -> "arrival"
  | Accept _ -> "accept"
  | Reject _ -> "reject"
  | Preempt _ -> "preempt"
  | Reshape _ -> "reshape"
  | Shed _ -> "shed"
  | Capacity _ -> "capacity"
  | Dispatch _ -> "dispatch"

let side_name = function Ingress -> "ingress" | Egress -> "egress"

let side_of_name = function
  | "ingress" -> Ok Ingress
  | "egress" -> Ok Egress
  | s -> Error ("unknown side " ^ s)

let profile_to_json segs =
  Json.List
    (Array.to_list segs
    |> List.map (fun (from_, until, rate) ->
           Json.List [ Json.Num from_; Json.Num until; Json.Num rate ]))

let to_json ev =
  let open Json in
  let num f = Num f and int i = Num (float_of_int i) in
  let fields =
    match ev with
    | Arrival { time; seq; id; ingress; egress; volume; ts; tf; max_rate } ->
        [
          ("ev", Str "arrival"); ("t", num time); ("seq", int seq); ("id", int id);
          ("in", int ingress); ("out", int egress); ("vol", num volume);
          ("ts", num ts); ("tf", num tf); ("max", num max_rate);
        ]
    | Accept { time; id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; shard } ->
        [
          ("ev", Str "accept"); ("t", num time); ("id", int id);
          ("in", int ingress); ("out", int egress); ("vol", num volume);
          ("ts", num ts); ("tf", num tf); ("max", num max_rate);
          ("bw", num bw); ("sigma", num sigma);
        ]
        @ (match shard with Some s -> [ ("shard", int s) ] | None -> [])
    | Reject { time; id; reason; port; headroom; shard } ->
        [ ("ev", Str "reject"); ("t", num time); ("id", int id); ("reason", Str reason) ]
        @ (match port with
          | Some (side, p) -> [ ("side", Str (side_name side)); ("port", int p) ]
          | None -> [])
        @ (match headroom with Some h -> [ ("headroom", num h) ] | None -> [])
        @ (match shard with Some s -> [ ("shard", int s) ] | None -> [])
    | Preempt { time; id; bw; shard } ->
        [ ("ev", Str "preempt"); ("t", num time); ("id", int id); ("bw", num bw) ]
        @ (match shard with Some s -> [ ("shard", int s) ] | None -> [])
    | Reshape { time; id; ingress; egress; volume; ts; tf; max_rate; profile; revised; shard }
      ->
        [
          ("ev", Str "reshape"); ("t", num time); ("id", int id);
          ("in", int ingress); ("out", int egress); ("vol", num volume);
          ("ts", num ts); ("tf", num tf); ("max", num max_rate);
          ("profile", profile_to_json profile);
          ( "revised",
            List
              (Array.to_list revised
              |> List.map (fun (rid, segs) ->
                     Obj [ ("id", int rid); ("profile", profile_to_json segs) ])) );
        ]
        @ (match shard with Some s -> [ ("shard", int s) ] | None -> [])
    | Shed { time; side; port; excess; victims } ->
        [
          ("ev", Str "shed"); ("t", num time); ("side", Str (side_name side));
          ("port", int port); ("excess", num excess); ("victims", int victims);
        ]
    | Capacity { time; side; port; capacity } ->
        [
          ("ev", Str "capacity"); ("t", num time); ("side", Str (side_name side));
          ("port", int port); ("cap", num capacity);
        ]
    | Dispatch { time; pending } ->
        [ ("ev", Str "dispatch"); ("t", num time); ("pending", int pending) ]
  in
  Json.to_string (Obj fields)

(* Field accessors for the parse direction, with uniform error text. *)
let ( let* ) r f = Result.bind r f

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let opt_field name conv json =
  match Json.member name json with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "malformed field %S" name))

let rec map_result f = function
  | [] -> Ok []
  | x :: tl ->
      let* y = f x in
      let* rest = map_result f tl in
      Ok (y :: rest)

let profile_of_json = function
  | Json.List items ->
      let* segs =
        map_result
          (function
            | Json.List [ a; b; c ] -> (
                match (Json.to_float a, Json.to_float b, Json.to_float c) with
                | Some from_, Some until, Some rate -> Ok (from_, until, rate)
                | _ -> Error "malformed profile segment")
            | _ -> Error "malformed profile segment")
          items
      in
      Ok (Array.of_list segs)
  | _ -> Error "malformed profile"

let of_json json =
  let* ev = field "ev" Json.to_str json in
  let* time = field "t" Json.to_float json in
  match ev with
  | "arrival" ->
      let* seq = field "seq" Json.to_int json in
      let* id = field "id" Json.to_int json in
      let* ingress = field "in" Json.to_int json in
      let* egress = field "out" Json.to_int json in
      let* volume = field "vol" Json.to_float json in
      let* ts = field "ts" Json.to_float json in
      let* tf = field "tf" Json.to_float json in
      let* max_rate = field "max" Json.to_float json in
      Ok (Arrival { time; seq; id; ingress; egress; volume; ts; tf; max_rate })
  | "accept" ->
      let* id = field "id" Json.to_int json in
      let* ingress = field "in" Json.to_int json in
      let* egress = field "out" Json.to_int json in
      let* volume = field "vol" Json.to_float json in
      let* ts = field "ts" Json.to_float json in
      let* tf = field "tf" Json.to_float json in
      let* max_rate = field "max" Json.to_float json in
      let* bw = field "bw" Json.to_float json in
      let* sigma = field "sigma" Json.to_float json in
      let* shard = opt_field "shard" Json.to_int json in
      Ok (Accept { time; id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; shard })
  | "reject" ->
      let* id = field "id" Json.to_int json in
      let* reason = field "reason" Json.to_str json in
      let* side = opt_field "side" Json.to_str json in
      let* port = opt_field "port" Json.to_int json in
      let* headroom = opt_field "headroom" Json.to_float json in
      let* port =
        match (side, port) with
        | Some s, Some p ->
            let* s = side_of_name s in
            Ok (Some (s, p))
        | None, None -> Ok None
        | _ -> Error "reject: side and port must appear together"
      in
      let* shard = opt_field "shard" Json.to_int json in
      Ok (Reject { time; id; reason; port; headroom; shard })
  | "preempt" ->
      let* id = field "id" Json.to_int json in
      let* bw = field "bw" Json.to_float json in
      let* shard = opt_field "shard" Json.to_int json in
      Ok (Preempt { time; id; bw; shard })
  | "reshape" ->
      let* id = field "id" Json.to_int json in
      let* ingress = field "in" Json.to_int json in
      let* egress = field "out" Json.to_int json in
      let* volume = field "vol" Json.to_float json in
      let* ts = field "ts" Json.to_float json in
      let* tf = field "tf" Json.to_float json in
      let* max_rate = field "max" Json.to_float json in
      let* profile = field "profile" (fun j -> Some j) json in
      let* profile = profile_of_json profile in
      let* revised = field "revised" (fun j -> Some j) json in
      let* revised =
        match revised with
        | Json.List items ->
            let* pairs =
              map_result
                (fun item ->
                  let* rid = field "id" Json.to_int item in
                  let* segs = field "profile" (fun j -> Some j) item in
                  let* segs = profile_of_json segs in
                  Ok (rid, segs))
                items
            in
            Ok (Array.of_list pairs)
        | _ -> Error "malformed field \"revised\""
      in
      let* shard = opt_field "shard" Json.to_int json in
      Ok (Reshape { time; id; ingress; egress; volume; ts; tf; max_rate; profile; revised; shard })
  | "shed" ->
      let* side = field "side" Json.to_str json in
      let* side = side_of_name side in
      let* port = field "port" Json.to_int json in
      let* excess = field "excess" Json.to_float json in
      let* victims = field "victims" Json.to_int json in
      Ok (Shed { time; side; port; excess; victims })
  | "capacity" ->
      let* side = field "side" Json.to_str json in
      let* side = side_of_name side in
      let* port = field "port" Json.to_int json in
      let* capacity = field "cap" Json.to_float json in
      Ok (Capacity { time; side; port; capacity })
  | "dispatch" ->
      let* pending = field "pending" Json.to_int json in
      Ok (Dispatch { time; pending })
  | other -> Error ("unknown event kind " ^ other)

let of_line line =
  let* json = Json.parse line in
  of_json json

let pp ppf ev =
  match ev with
  | Arrival { time; id; ingress; egress; volume; ts; tf; max_rate; _ } ->
      Format.fprintf ppf "%12.3f arrival  r%d %d->%d vol=%.1fMB win=[%.2f,%.2f] max=%.1f" time id
        ingress egress volume ts tf max_rate
  | Accept { time; id; bw; sigma; _ } ->
      Format.fprintf ppf "%12.3f accept   r%d @ %.2fMB/s from %.3f" time id bw sigma
  | Reject { time; id; reason; port; headroom; _ } ->
      Format.fprintf ppf "%12.3f reject   r%d (%s)%a" time id reason
        (fun ppf -> function
          | Some (side, p), Some h ->
              Format.fprintf ppf " at %s %d, headroom %.2fMB/s" (side_name side) p h
          | Some (side, p), None -> Format.fprintf ppf " at %s %d" (side_name side) p
          | _ -> ())
        (port, headroom)
  | Preempt { time; id; bw; _ } ->
      Format.fprintf ppf "%12.3f preempt  r%d (held %.2fMB/s)" time id bw
  | Reshape { time; id; profile; revised; _ } ->
      Format.fprintf ppf "%12.3f reshape  r%d accepted (%d steps, %d pending revised)" time id
        (Array.length profile) (Array.length revised)
  | Shed { time; side; port; excess; victims } ->
      Format.fprintf ppf "%12.3f shed     %s %d excess=%.2fMB/s victims=%d" time (side_name side)
        port excess victims
  | Capacity { time; side; port; capacity } ->
      Format.fprintf ppf "%12.3f capacity %s %d -> %.2fMB/s" time (side_name side) port capacity
  | Dispatch { time; pending } ->
      Format.fprintf ppf "%12.3f dispatch (%d pending)" time pending
