(** Telemetry context threaded through the scheduler stack.

    A [ctx] bundles an event sink and a metrics registry.  Instrumented
    code takes [?obs:Obs.ctx] defaulting to {!disabled}; with the default,
    every helper below short-circuits on one boolean, so uninstrumented
    callers pay essentially nothing.

    Events are built lazily: [Obs.event ctx (fun () -> Event.Accept ...)]
    only allocates the event when a trace sink is attached. *)

type ctx = {
  enabled : bool;
  tracing : bool;  (** a real sink is attached *)
  sink : Sink.t;
  metrics : Metrics.t;
}

val disabled : ctx
(** Everything off.  The default for every [?obs] argument. *)

val create : ?sink:Sink.t -> ?metrics:Metrics.t -> unit -> ctx
(** Metrics-only when [sink] is omitted; a fresh registry is made when
    [metrics] is omitted. *)

val enabled : ctx -> bool
val tracing : ctx -> bool
val metrics : ctx -> Metrics.t

(** {2 Events} *)

val event : ctx -> (unit -> Event.t) -> unit
(** Emit to the sink; the thunk runs only when [tracing ctx]. *)

val emit : ctx -> Event.t -> unit
(** Eager variant, for call sites that already hold the event. *)

val flush : ctx -> unit

(** {2 Metrics shorthands}

    Name-based, guarded by [enabled]; the registry lookup is a hashtable
    probe, fine at decision granularity. *)

val count : ctx -> string -> unit
val count_n : ctx -> string -> int -> unit
val set_gauge : ctx -> string -> float -> unit
val observe : ctx -> string -> float -> unit

(** {2 Profiling spans} *)

val span : ctx -> string -> (unit -> 'a) -> 'a
(** [span ctx name f] runs [f ()] and records its wall-clock duration in
    nanoseconds in histogram [span_<name>_ns].  With [ctx] disabled it is
    a direct call — no clock read. *)
