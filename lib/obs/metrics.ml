type counter = { mutable count : int }
type gauge = { mutable level : float }

(* Log2 buckets: sample v lands in the bucket of its binary exponent,
   shifted so that values <= 1.0 share bucket 0.  Upper bound of bucket i
   is 2^i.  63 exponent buckets plus a catch-all keeps the array tiny. *)
let nbuckets = 64

type histogram = {
  buckets : int array;  (* length nbuckets *)
  mutable total : int;
  mutable sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t name make select =
  match Hashtbl.find_opt t.instruments name with
  | Some inst -> (
      match select inst with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name (kind_name inst)))
  | None ->
      let inst = make () in
      Hashtbl.add t.instruments name inst;
      match select inst with Some v -> v | None -> assert false

let counter t name =
  find_or_create t name
    (fun () -> Counter { count = 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

let gauge t name =
  find_or_create t name
    (fun () -> Gauge { level = 0.0 })
    (function Gauge g -> Some g | _ -> None)

let set g v = g.level <- v
let gauge_value g = g.level

let histogram t name =
  find_or_create t name
    (fun () -> Histogram { buckets = Array.make nbuckets 0; total = 0; sum = 0.0 })
    (function Histogram h -> Some h | _ -> None)

let bucket_of v =
  if not (Float.is_finite v) || v <= 1.0 then 0
  else
    (* frexp v = (m, e) with v = m * 2^e, 0.5 <= m < 1, so 2^(e-1) <= v < 2^e:
       v belongs in the bucket with upper bound 2^e. *)
    let _, e = Float.frexp v in
    if e >= nbuckets then nbuckets - 1 else e

let observe h v =
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.total <- h.total + 1;
  if Float.is_finite v then h.sum <- h.sum +. v

let hist_count h = h.total
let hist_sum h = h.sum

let bound i = Float.ldexp 1.0 i  (* 2^i *)

(* Nearest-rank percentile with linear interpolation inside the log2
   bucket holding the rank.  The k-th smallest sample (k = ceil(q*n))
   lies in the first bucket whose cumulative count reaches k; its exact
   position inside the bucket is unknown, so the estimate walks
   (k - count_below) / bucket_count of the way across the bucket's
   value range.  The error is therefore bounded by the bucket width: the
   estimate always lies in the same power-of-two bucket as the exact
   sample (the qcheck oracle in test_obs checks precisely this). *)
(* Nearest rank k = ⌈q·n⌉, computed robustly: the float product q·n can
   land an ulp above the exact integer (0.3 · 10 = 3.0000000000000004),
   and ceil would then overshoot by a whole rank — for large merged
   histograms that crosses bucket boundaries.  Shaving a relative
   epsilon before the ceil keeps exact-integer products exact. *)
let rank_of ~total q =
  let kf = q *. float_of_int total in
  let k = int_of_float (Float.ceil (kf -. (1e-9 *. Float.max kf 1.0))) in
  Int.max 1 (Int.min total k)

let percentile h q =
  if h.total = 0 then Float.nan
  else begin
    if not (Float.is_finite q) || q < 0. || q > 1. then
      invalid_arg "Metrics.percentile: q must be in [0,1]";
    let k = rank_of ~total:h.total q in
    let i = ref 0 and below = ref 0 in
    while !below + h.buckets.(!i) < k && !i < nbuckets - 1 do
      below := !below + h.buckets.(!i);
      i := !i + 1
    done;
    let lo = if !i = 0 then 0.0 else bound (!i - 1) in
    let hi = bound !i in
    let inside = h.buckets.(!i) in
    if inside = 0 then hi
    else lo +. ((hi -. lo) *. (float_of_int (k - !below) /. float_of_int inside))
  end

let hist_buckets h =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (bound i, h.buckets.(i)) :: !acc
  done;
  !acc

(* --- merging (per-domain registries -> one exposition) --- *)

let merge_hist_into dst src =
  Array.iteri (fun i n -> if n > 0 then dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum

let merge_into ~into src =
  Hashtbl.iter
    (fun name inst ->
      match inst with
      | Counter c -> add (counter into name) c.count
      | Gauge g ->
          let dst = gauge into name in
          dst.level <- dst.level +. g.level
      | Histogram h -> merge_hist_into (histogram into name) h)
    src.instruments

let merged ts =
  let into = create () in
  List.iter (fun t -> merge_into ~into t) ts;
  into

let sorted t =
  Hashtbl.fold (fun name inst acc -> (name, inst) :: acc) t.instruments []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let num = Json.num_to_string

let to_prometheus t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name c.count)
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name (num g.level))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          let cum = ref 0 in
          List.iter
            (fun (ub, n) ->
              cum := !cum + n;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (num ub) !cum))
            (hist_buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.total);
          Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (num h.sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.total))
    (sorted t);
  Buffer.contents buf

let to_json t =
  let open Json in
  let int i = Num (float_of_int i) in
  let fields =
    List.map
      (fun (name, inst) ->
        let body =
          match inst with
          | Counter c -> Obj [ ("type", Str "counter"); ("value", int c.count) ]
          | Gauge g -> Obj [ ("type", Str "gauge"); ("value", Num g.level) ]
          | Histogram h ->
              Obj
                [
                  ("type", Str "histogram");
                  ("count", int h.total);
                  ("sum", Num h.sum);
                  ( "buckets",
                    List
                      (List.map
                         (fun (ub, n) -> Obj [ ("le", Num ub); ("count", int n) ])
                         (hist_buckets h)) );
                ]
        in
        (name, body))
      (sorted t)
  in
  Json.to_string (Obj fields)
