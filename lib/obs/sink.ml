type t = { emit : Event.t -> unit; flush : unit -> unit }

let noop = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let jsonl oc =
  {
    emit =
      (fun ev ->
        output_string oc (Event.to_json ev);
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

let jsonl_buffer buf =
  {
    emit =
      (fun ev ->
        Buffer.add_string buf (Event.to_json ev);
        Buffer.add_char buf '\n');
    flush = (fun () -> ());
  }

(* Binary-framed trace sink; the default for hot paths.  One scratch
   buffer is reused across events so steady-state emission allocates
   only the event payload itself. *)
let binary oc =
  let scratch = Buffer.create 256 in
  {
    emit =
      (fun ev ->
        Buffer.clear scratch;
        Event_codec.Binary.encode scratch ev;
        Buffer.output_buffer oc scratch);
    flush = (fun () -> flush oc);
  }

let binary_buffer buf =
  { emit = (fun ev -> Event_codec.Binary.encode buf ev); flush = (fun () -> ()) }

let pretty oc =
  let ppf = Format.formatter_of_out_channel oc in
  {
    emit = (fun ev -> Format.fprintf ppf "%a@." Event.pp ev);
    flush = (fun () -> Format.pp_print_flush ppf ());
  }

let tee a b =
  {
    emit =
      (fun ev ->
        a.emit ev;
        b.emit ev);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

type ring = { capacity : int; q : Event.t Queue.t; mutable dropped : int }

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  { capacity; q = Queue.create (); dropped = 0 }

let ring_sink r =
  {
    emit =
      (fun ev ->
        if Queue.length r.q >= r.capacity then begin
          ignore (Queue.pop r.q);
          r.dropped <- r.dropped + 1
        end;
        Queue.push ev r.q);
    flush = (fun () -> ());
  }

let ring_events r = List.of_seq (Queue.to_seq r.q)
let ring_dropped r = r.dropped
