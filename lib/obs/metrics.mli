(** Name-keyed registry of counters, gauges, and log-scale histograms.

    Instruments are found-or-created by name: asking twice for the same
    name returns the same instrument, so call sites never need to share
    handles.  Asking for an existing name with a different instrument
    kind raises [Invalid_argument].

    Histograms bucket by powers of two (64 buckets), which is plenty of
    resolution for latencies and probe counts while keeping observation
    O(1) with no configuration. *)

type t

val create : unit -> t

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit
(** Negative and non-finite samples are counted in the lowest bucket. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_buckets : histogram -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)], ascending. *)

val percentile : histogram -> float -> float
(** [percentile h q] estimates the [q]-quantile ([q ∈ \[0,1\]],
    nearest-rank) of the observed samples: the estimate interpolates
    linearly inside the log₂ bucket holding rank [ceil (q·n)], so for
    non-negative samples it is guaranteed to land in the same
    power-of-two bucket as the exact order statistic (relative error
    < 2×).  [nan] on an empty histogram; raises [Invalid_argument] when
    [q] is outside [\[0,1\]]. *)

(** {2 Merging}

    Sharded runs keep one registry per domain (the registry is not
    thread-safe); the exposition endpoint folds them into one. *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]: counters and histogram buckets add, gauges
    sum.  Raises [Invalid_argument] if a name is registered with
    different instrument kinds in the two registries. *)

val merged : t list -> t
(** Fresh registry holding the element-wise merge, left to right. *)

(** {2 Dumps}

    Both renderings list instruments in name order, so output is
    deterministic for a given set of observations. *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# TYPE] lines, cumulative
    [name_bucket{le="..."}] series plus [_sum]/[_count] for histograms. *)

val to_json : t -> string
