(** Minimal JSON values, just enough for the telemetry trace format.

    Floats print with ["%.17g"] so every finite [float] round-trips
    bit-exactly through a trace file — the replay-equals-live check in
    [gridbw replay-trace] depends on this.  Non-finite floats are not
    representable (RFC 8259) and raise on output. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no whitespace). *)

val num_to_string : float -> string
(** The number rendering [to_string] uses; raises on non-finite input. *)

val parse : string -> (t, string) result
(** Parse one JSON document; trailing garbage is an error.  The error
    string names the offending character position. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
