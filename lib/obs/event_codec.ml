(* The two wire forms of {!Event.t} behind one {!Gridbw_wire.Codec.S}
   interface: [Jsonl] is the debug/interop form (one JSON object per
   line, the historical trace format), [Binary] is the length-prefixed
   binary frame used by default on hot paths.  Both round-trip every
   constructor bit-exactly — floats as IEEE bit patterns on the binary
   side, %.17g on the JSON side — and the qcheck suite in test_wire.ml
   pins them equal. *)

module Codec = Gridbw_wire.Codec
module Frame = Gridbw_wire.Frame
module Binio = Gridbw_wire.Binio

(* Frame tag for event records; bump on incompatible layout changes. *)
let frame_tag = 0x01

module Jsonl = struct
  type t = Event.t

  let name = "event-jsonl"

  let encode b ev =
    Buffer.add_string b (Event.to_json ev);
    Buffer.add_char b '\n'

  let decode s ~pos : t Codec.decoded =
    match String.index_from_opt s pos '\n' with
    | None -> Incomplete
    | Some nl -> (
        match Event.of_line (String.sub s pos (nl - pos)) with
        | Ok ev -> Value (ev, nl + 1)
        | Error msg -> Corrupt msg)
end

module Binary = struct
  type t = Event.t

  let name = "event-binary"

  let add_side b side = Binio.add_u8 b (match side with Event.Ingress -> 0 | Event.Egress -> 1)

  (* Optional shard-id trailer on decision events.  [None] writes no
     bytes at all, so unsharded records stay byte-identical to the
     pre-shard layout; readers treat end-of-body as [None] and accept
     both old and new records. *)
  let add_shard b = function
    | None -> ()
    | Some s ->
        Binio.add_u8 b 1;
        Binio.add_i64 b s

  let encode_body b (ev : Event.t) =
    match ev with
    | Arrival { time; seq; id; ingress; egress; volume; ts; tf; max_rate } ->
        Binio.add_u8 b 1;
        Binio.add_f64 b time;
        Binio.add_i64 b seq;
        Binio.add_i64 b id;
        Binio.add_i64 b ingress;
        Binio.add_i64 b egress;
        Binio.add_f64 b volume;
        Binio.add_f64 b ts;
        Binio.add_f64 b tf;
        Binio.add_f64 b max_rate
    | Accept { time; id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; shard } ->
        Binio.add_u8 b 2;
        Binio.add_f64 b time;
        Binio.add_i64 b id;
        Binio.add_i64 b ingress;
        Binio.add_i64 b egress;
        Binio.add_f64 b volume;
        Binio.add_f64 b ts;
        Binio.add_f64 b tf;
        Binio.add_f64 b max_rate;
        Binio.add_f64 b bw;
        Binio.add_f64 b sigma;
        add_shard b shard
    | Reject { time; id; reason; port; headroom; shard } ->
        Binio.add_u8 b 3;
        Binio.add_f64 b time;
        Binio.add_i64 b id;
        Binio.add_str b reason;
        (match port with
        | None -> Binio.add_u8 b 0
        | Some (side, p) ->
            Binio.add_u8 b 1;
            add_side b side;
            Binio.add_i64 b p);
        (match headroom with
        | None -> Binio.add_u8 b 0
        | Some h ->
            Binio.add_u8 b 1;
            Binio.add_f64 b h);
        add_shard b shard
    | Preempt { time; id; bw; shard } ->
        Binio.add_u8 b 4;
        Binio.add_f64 b time;
        Binio.add_i64 b id;
        Binio.add_f64 b bw;
        add_shard b shard
    | Reshape { time; id; ingress; egress; volume; ts; tf; max_rate; profile; revised; shard }
      ->
        Binio.add_u8 b 8;
        Binio.add_f64 b time;
        Binio.add_i64 b id;
        Binio.add_i64 b ingress;
        Binio.add_i64 b egress;
        Binio.add_f64 b volume;
        Binio.add_f64 b ts;
        Binio.add_f64 b tf;
        Binio.add_f64 b max_rate;
        Binio.add_i64 b (Array.length profile);
        Array.iter
          (fun (from_, until, rate) ->
            Binio.add_f64 b from_;
            Binio.add_f64 b until;
            Binio.add_f64 b rate)
          profile;
        Binio.add_i64 b (Array.length revised);
        Array.iter
          (fun (rid, segs) ->
            Binio.add_i64 b rid;
            Binio.add_i64 b (Array.length segs);
            Array.iter
              (fun (from_, until, rate) ->
                Binio.add_f64 b from_;
                Binio.add_f64 b until;
                Binio.add_f64 b rate)
              segs)
          revised;
        add_shard b shard
    | Shed { time; side; port; excess; victims } ->
        Binio.add_u8 b 5;
        Binio.add_f64 b time;
        add_side b side;
        Binio.add_i64 b port;
        Binio.add_f64 b excess;
        Binio.add_i64 b victims
    | Capacity { time; side; port; capacity } ->
        Binio.add_u8 b 6;
        Binio.add_f64 b time;
        add_side b side;
        Binio.add_i64 b port;
        Binio.add_f64 b capacity
    | Dispatch { time; pending } ->
        Binio.add_u8 b 7;
        Binio.add_f64 b time;
        Binio.add_i64 b pending

  (* Cursor-style reader over a body payload; any out-of-bounds read is
     reported as corruption (the frame CRC already vouched for the bytes,
     so a short body is a layout error, not a torn record). *)
  exception Short

  let decode_body s =
    let pos = ref 0 in
    let len = String.length s in
    let need n = if !pos + n > len then raise Short in
    let u8 () =
      need 1;
      let v = Binio.get_u8 s !pos in
      incr pos;
      v
    in
    let i64 () =
      need 8;
      let v = Binio.get_i64 s !pos in
      pos := !pos + 8;
      v
    in
    let f64 () =
      need 8;
      let v = Binio.get_f64 s !pos in
      pos := !pos + 8;
      v
    in
    let str () =
      need 4;
      let n = Binio.get_u32 s !pos in
      pos := !pos + 4;
      need n;
      let v = String.sub s !pos n in
      pos := !pos + n;
      v
    in
    let side () =
      match u8 () with
      | 0 -> Event.Ingress
      | 1 -> Event.Egress
      | n -> failwith (Printf.sprintf "unknown side code %d" n)
    in
    (* End-of-body means the record predates shard ids. *)
    let shard () =
      if !pos = len then None
      else
        match u8 () with
        | 1 -> Some (i64 ())
        | n -> failwith (Printf.sprintf "unknown shard tag %d" n)
    in
    try
      let ev =
        match u8 () with
        | 1 ->
            let time = f64 () in
            let seq = i64 () in
            let id = i64 () in
            let ingress = i64 () in
            let egress = i64 () in
            let volume = f64 () in
            let ts = f64 () in
            let tf = f64 () in
            let max_rate = f64 () in
            Event.Arrival { time; seq; id; ingress; egress; volume; ts; tf; max_rate }
        | 2 ->
            let time = f64 () in
            let id = i64 () in
            let ingress = i64 () in
            let egress = i64 () in
            let volume = f64 () in
            let ts = f64 () in
            let tf = f64 () in
            let max_rate = f64 () in
            let bw = f64 () in
            let sigma = f64 () in
            let shard = shard () in
            Event.Accept { time; id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; shard }
        | 3 ->
            let time = f64 () in
            let id = i64 () in
            let reason = str () in
            let port =
              match u8 () with
              | 0 -> None
              | _ ->
                  let s = side () in
                  let p = i64 () in
                  Some (s, p)
            in
            let headroom = match u8 () with 0 -> None | _ -> Some (f64 ()) in
            let shard = shard () in
            Event.Reject { time; id; reason; port; headroom; shard }
        | 4 ->
            let time = f64 () in
            let id = i64 () in
            let bw = f64 () in
            let shard = shard () in
            Event.Preempt { time; id; bw; shard }
        | 8 ->
            let time = f64 () in
            let id = i64 () in
            let ingress = i64 () in
            let egress = i64 () in
            let volume = f64 () in
            let ts = f64 () in
            let tf = f64 () in
            let max_rate = f64 () in
            let triples () =
              let n = i64 () in
              if n < 0 then failwith "negative profile length";
              Array.init n (fun _ ->
                  let from_ = f64 () in
                  let until = f64 () in
                  let rate = f64 () in
                  (from_, until, rate))
            in
            let profile = triples () in
            let nrev = i64 () in
            if nrev < 0 then failwith "negative revision count";
            let revised =
              Array.init nrev (fun _ ->
                  let rid = i64 () in
                  let segs = triples () in
                  (rid, segs))
            in
            let shard = shard () in
            Event.Reshape
              { time; id; ingress; egress; volume; ts; tf; max_rate; profile; revised; shard }
        | 5 ->
            let time = f64 () in
            let side = side () in
            let port = i64 () in
            let excess = f64 () in
            let victims = i64 () in
            Event.Shed { time; side; port; excess; victims }
        | 6 ->
            let time = f64 () in
            let side = side () in
            let port = i64 () in
            let capacity = f64 () in
            Event.Capacity { time; side; port; capacity }
        | 7 ->
            let time = f64 () in
            let pending = i64 () in
            Event.Dispatch { time; pending }
        | n -> failwith (Printf.sprintf "unknown event code %d" n)
      in
      if !pos <> len then Error "trailing bytes in event body" else Ok ev
    with
    | Short -> Error "event body too short"
    | Failure msg -> Error msg

  (* Bare body bytes, no frame — for embedding in an outer frame that
     supplies its own length and CRC (the WAL does this). *)
  let body_of ev =
    let b = Buffer.create 96 in
    encode_body b ev;
    Buffer.contents b

  let of_body = decode_body

  let encode b ev =
    let body = Buffer.create 96 in
    encode_body body ev;
    Frame.add b ~tag:frame_tag (Buffer.contents body)

  let decode s ~pos : t Codec.decoded =
    match Frame.decode s ~pos with
    | Incomplete -> Incomplete
    | Corrupt msg -> Corrupt msg
    | Value ((tag, body), next) ->
        if tag <> frame_tag then Corrupt (Printf.sprintf "unexpected frame tag %d" tag)
        else ( match decode_body body with Ok ev -> Value (ev, next) | Error msg -> Corrupt msg)
end

(* Per-record format sniff: a 0xB1 first byte opens a binary frame,
   anything else is a JSONL line.  Readers use this so traces and
   journals may mix both forms freely. *)
let sniff_decode s ~pos : Event.t Codec.decoded =
  if pos < String.length s && Frame.is_binary s.[pos] then Binary.decode s ~pos
  else Jsonl.decode s ~pos
