(** Request-scoped tracing spans for the serving plane.

    A span covers one request from the first byte of its frame to the
    write of its acknowledged reply, decomposed into the fixed pipeline
    stages.  Spans are flat (stage → accumulated nanoseconds) rather
    than a tree: the serve path has exactly one pipeline, and the flat
    layout keeps the binary form fixed-size for the flight recorder.

    Clock: {!now_ns} is [Unix.gettimeofday] clamped non-decreasing —
    the toolchain ships no monotonic-clock binding, so durations are
    wall-clock and can only be truncated (never negative) by backwards
    clock steps. *)

type stage =
  | Frame_decode  (** length-prefix / binary frame decoding *)
  | Protocol_parse  (** request payload parse *)
  | Admit_search  (** the admission decision (WINDOW/GREEDY search) *)
  | Wal_append  (** journaling the decision events (buffered append) *)
  | Commit_fsync
      (** group-commit wait: from this request's decision until the
          round's fsync completed (includes round-mates' handling) *)
  | Reply_write  (** response encode + enqueue *)

val all_stages : stage list
val stage_name : stage -> string
val stage_of_name : string -> stage option

type t

val now_ns : unit -> float
(** Wall clock in nanoseconds, clamped non-decreasing process-wide. *)

val start : conn:int -> unit -> t
(** Open a span with a fresh process-monotone trace id. *)

val make :
  id:int ->
  conn:int ->
  req:int option ->
  time:float ->
  total_ns:float ->
  probes:int ->
  durs:float array ->
  t
(** Rebuild a finished span (decoders, tests).  [durs] must hold one
    duration per stage, in [all_stages] order.
    @raise Invalid_argument on a wrong-sized array. *)

val record : t -> stage -> float -> unit
(** Accumulate [ns] onto a stage (repeats add up). *)

val timed : t option -> stage -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its duration when a span is present;
    a direct call on [None]. *)

val add_probes : t -> int -> unit
val set_req : t -> int -> unit

val backdate : t -> float -> unit
(** Move the open instant [ns] earlier: work that happened before the
    span object existed (the frame decode that produced the request)
    still counts toward [total_ns]. *)

val finish : t -> unit
(** Set [total_ns] to the time since [start]. *)

val id : t -> int
val conn : t -> int
val req : t -> int option
val time : t -> float
val total_ns : t -> float
val probes : t -> int
val duration : t -> stage -> float
val stage_sum : t -> float
val pp : Format.formatter -> t -> unit

(** {2 Wire forms}

    Same split as [Event_codec]: a JSONL object ([{"ev":"span",...}])
    and a fixed-layout binary frame under {!frame_tag}, so readers of
    mixed traces can skip span records by tag (binary) or by
    {!looks_like_json_span} (text). *)

val frame_tag : int
(** 0x04 — the shared-frame tag for binary span records. *)

val to_json : t -> string
val of_json : Json.t -> (t, string) result

val looks_like_json_span : string -> bool
(** Cheap substring test for [{"ev":"span"}] lines, so event-trace
    readers can skip spans without a full parse. *)

module Jsonl : Gridbw_wire.Codec.S with type t = t
module Binary : sig
  include Gridbw_wire.Codec.S with type t = t

  val body_of : t -> string
  val of_body : string -> (t, string) result
end

val sniff_decode : string -> pos:int -> t Gridbw_wire.Codec.decoded
(** Binary if the first byte is the frame magic, JSONL otherwise. *)
