type ctx = {
  enabled : bool;
  tracing : bool;
  sink : Sink.t;
  metrics : Metrics.t;
}

let disabled =
  { enabled = false; tracing = false; sink = Sink.noop; metrics = Metrics.create () }

let create ?sink ?metrics () =
  {
    enabled = true;
    tracing = Option.is_some sink;
    sink = Option.value sink ~default:Sink.noop;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
  }

let enabled ctx = ctx.enabled
let tracing ctx = ctx.tracing
let metrics ctx = ctx.metrics

let event ctx make = if ctx.tracing then ctx.sink.Sink.emit (make ())
let emit ctx ev = if ctx.tracing then ctx.sink.Sink.emit ev
let flush ctx = if ctx.enabled then ctx.sink.Sink.flush ()

let count ctx name = if ctx.enabled then Metrics.incr (Metrics.counter ctx.metrics name)

let count_n ctx name n =
  if ctx.enabled then Metrics.add (Metrics.counter ctx.metrics name) n

let set_gauge ctx name v =
  if ctx.enabled then Metrics.set (Metrics.gauge ctx.metrics name) v

let observe ctx name v =
  if ctx.enabled then Metrics.observe (Metrics.histogram ctx.metrics name) v

let span ctx name f =
  if not ctx.enabled then f ()
  else begin
    let h = Metrics.histogram ctx.metrics ("span_" ^ name ^ "_ns") in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1e9))
      f
  end
