(** Typed telemetry events emitted by the scheduler stack.

    One constructor per decision kind the stack can take: request arrival,
    admission accept/reject (with the rejecting port and its headroom at
    decision time), preemption, a fault-injector shed round, a capacity
    revision, and a sim-engine dispatch.  Events carry primitive fields
    only, so this library depends on nothing above the stdlib.

    [Arrival] and [Accept] embed the full request (and allocation) fields:
    a JSONL trace of a plain run is self-contained, and
    [gridbw replay-trace] can rebuild the exact summary from the trace
    alone.  [Arrival.seq] is the request's position in the caller's input
    list, so the replay can restore the original list order (float
    accumulation in the summary is order-sensitive). *)

type side = Ingress | Egress

type t =
  | Arrival of {
      time : float;
      seq : int;  (** position in the input request list *)
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
    }
  | Accept of {
      time : float;
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
      bw : float;  (** granted constant rate *)
      sigma : float;  (** transmission start *)
      shard : int option;  (** deciding shard in a sharded run, [None] otherwise *)
    }
  | Reject of {
      time : float;
      id : int;
      reason : string;  (** Types.pp_reason rendering, e.g. "port-saturated" *)
      port : (side * int) option;  (** the rejecting port, when one exists *)
      headroom : float option;  (** that port's spare bandwidth at decision time *)
      shard : int option;  (** deciding shard in a sharded run, [None] otherwise *)
    }
  | Preempt of { time : float; id : int; bw : float; shard : int option }
  | Reshape of {
      time : float;
      id : int;
      ingress : int;
      egress : int;
      volume : float;
      ts : float;
      tf : float;
      max_rate : float;
      profile : (float * float * float) array;
          (** the admitted step schedule, [(from_, until, rate)] per step *)
      revised : (int * (float * float * float) array) array;
          (** new profiles for already-admitted, not-yet-started transfers
              reshaped to open capacity for this admit, in commit (EDF)
              order.  The whole record applies atomically: the revisions
              and the admit are one journal entry. *)
      shard : int option;
    }
      (** a MALLEABLE acceptance: like [Accept] but carrying the full
          step-function profile, plus any pending-transfer reshaping the
          admission performed.  Emitted {e instead of} [Accept] by the
          malleable engine's profiled path. *)
  | Shed of {
      time : float;
      side : side;
      port : int;
      excess : float;  (** committed bandwidth above the revised capacity *)
      victims : int;  (** transfers preempted this round *)
    }
  | Capacity of { time : float; side : side; port : int; capacity : float }
  | Dispatch of { time : float; pending : int }
      (** sim-engine event dispatch; [pending] is the queue depth after the pop *)

val time : t -> float
val kind : t -> string
(** "arrival", "accept", "reject", "preempt", "reshape", "shed",
    "capacity", "dispatch". *)

val side_name : side -> string

val to_json : t -> string
(** One compact JSON object, no trailing newline — one trace line. *)

val of_json : Json.t -> (t, string) result
val of_line : string -> (t, string) result
(** Parse one trace line back into an event. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering (the pretty sink). *)
