(* Crash-surviving flight recorder: the in-memory span ring persisted as
   a fixed-size binary file.  Appends write each finished span's binary
   frame at a rotating offset (wrapping to 0 when the tail is reached),
   one [write(2)] per span and never an fsync — the page cache survives
   a SIGKILL, which is the failure this recorder exists for; it makes no
   power-loss promise (that is the WAL's job).

   Recovery is a torn-tolerant scan in the WAL's style: try a frame at
   every magic byte, CRC decides.  Wrap-around partially overwrites the
   oldest frames; their severed bytes simply fail the CRC and drop out.
   Spans come back ordered by (open time, id) — ids restart at 1 per
   process, so wall time breaks ties across daemon restarts. *)

type t = {
  fd : Unix.file_descr;
  size : int;
  mutable pos : int;
}

let default_size = 1 lsl 20

let create ?(size = default_size) path =
  if size < Gridbw_wire.Frame.overhead then invalid_arg "Flight.create: size too small";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  Unix.ftruncate fd size;
  { fd; size; pos = 0 }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let append t span =
  let b = Buffer.create 128 in
  Span.Binary.encode b span;
  let frame = Buffer.contents b in
  let len = String.length frame in
  if len <= t.size then begin
    if t.pos + len > t.size then begin
      (* Zero the severed tail so a stale frame header there cannot pair
         with the bytes we are about to wrap over. *)
      ignore (Unix.lseek t.fd t.pos Unix.SEEK_SET);
      write_all t.fd (String.make (t.size - t.pos) '\000');
      t.pos <- 0
    end;
    ignore (Unix.lseek t.fd t.pos Unix.SEEK_SET);
    write_all t.fd frame;
    t.pos <- t.pos + len
  end

let close t = Unix.close t.fd

(* --- recovery --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_string s =
  let len = String.length s in
  let rec go acc pos =
    if pos >= len then acc
    else if not (Gridbw_wire.Frame.is_binary s.[pos]) then go acc (pos + 1)
    else
      match Gridbw_wire.Frame.decode ~max:len s ~pos with
      | Value ((tag, body), next) when tag = Span.frame_tag -> (
          match Span.Binary.of_body body with
          | Ok sp -> go (sp :: acc) next
          | Error _ -> go acc (pos + 1))
      | Value _ | Incomplete | Corrupt _ -> go acc (pos + 1)
  in
  let spans = go [] 0 in
  List.sort
    (fun a b ->
      match Float.compare (Span.time a) (Span.time b) with
      | 0 -> Int.compare (Span.id a) (Span.id b)
      | c -> c)
    spans

let scan path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | s -> Ok (scan_string s)

let last n spans =
  let len = List.length spans in
  if len <= n then spans else List.filteri (fun i _ -> i >= len - n) spans
