type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* %.17g is the shortest format that round-trips every double; integral
   values still print without an exponent ("42" stays "42"). *)
let num_to_string f =
  if not (Float.is_finite f) then invalid_arg "Json: non-finite number";
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (num_to_string f)
    | Str s -> escape buf s
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Trace strings are ASCII; encode BMP code points as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception Failure msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
