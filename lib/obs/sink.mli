(** Pluggable destinations for the event stream.

    A sink is just a pair of closures; the no-op sink makes emission one
    indirect call on a closure that does nothing, so a traced code path
    with tracing off costs a branch and nothing else. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

val noop : t
(** Drops every event.  [flush] does nothing. *)

val jsonl : out_channel -> t
(** One compact JSON object per line ({!Event.to_json}).  [flush] flushes
    the channel (the caller closes it). *)

val jsonl_buffer : Buffer.t -> t
(** Same format, appended to a buffer — for tests and benchmarks. *)

val binary : out_channel -> t
(** Length-prefixed binary frames ({!Event_codec.Binary}); the default
    trace form on hot paths.  [flush] flushes the channel. *)

val binary_buffer : Buffer.t -> t
(** Same binary frames, appended to a buffer. *)

val pretty : out_channel -> t
(** Human-readable lines ({!Event.pp}). *)

val tee : t -> t -> t
(** Send every event to both sinks. *)

(** {2 Ring buffer} *)

type ring
(** Bounded in-memory sink keeping the most recent events. *)

val ring : capacity:int -> ring
(** [capacity > 0] most recent events are retained. *)

val ring_sink : ring -> t
val ring_events : ring -> Event.t list
(** Retained events, oldest first. *)

val ring_dropped : ring -> int
(** Events evicted since creation. *)
