(** Co-allocation of network, CPU and storage (section 2.3 of the paper).

    A grid job stages its input dataset from a source site (ingress port)
    to a destination site (egress port) and then computes there.  The
    destination site has a bounded CPU pool; a job occupies one CPU slot
    from the moment its transfer completes until its computation ends.
    Granting a transfer {e more} than its minimum bandwidth (the paper's
    [f × MaxRate] policy) finishes staging sooner, which starts — and
    releases — the CPU earlier; the price is a lower transfer accept rate.
    This module makes that trade-off measurable. *)

type job = {
  id : int;
  transfer : Gridbw_request.Request.t;
      (** staging request; its [egress] is the compute site *)
  cpu_seconds : float;  (** computation time once staged, > 0 *)
}

val job :
  id:int -> transfer:Gridbw_request.Request.t -> cpu_seconds:float -> job
(** Raises [Invalid_argument] on non-positive [cpu_seconds]. *)

type completion = {
  staged_at : float;  (** transfer finish (tau) *)
  cpu_start : float;  (** may be later than [staged_at] if the site queue is busy *)
  finished_at : float;
}

type job_outcome =
  | Completed of completion
  | Transfer_rejected of Gridbw_core.Types.reason

type result = {
  outcomes : (job * job_outcome) list;  (** in job-id order *)
  completed : int;
  rejected : int;
  mean_completion_time : float;
      (** mean of [finished_at - transfer.ts] over completed jobs *)
  mean_staging_time : float;  (** mean of [staged_at - transfer.ts] *)
  mean_cpu_wait : float;  (** mean of [cpu_start - staged_at] *)
  makespan : float;  (** latest [finished_at], 0 if none completed *)
}

val simulate :
  Gridbw_topology.Fabric.t ->
  policy:Gridbw_core.Policy.t ->
  cpus_per_site:int ->
  job list ->
  result
(** Event-driven simulation: transfers are admitted by the on-line GREEDY
    controller (Algorithm 2) under [policy]; completed transfers enqueue
    FIFO on their destination site's CPU pool of [cpus_per_site] slots. *)

val random_jobs :
  Gridbw_prng.Rng.t ->
  Gridbw_workload.Spec.t ->
  mean_cpu_seconds:float ->
  job list
(** One job per request of the spec, with exponentially distributed
    computation times. *)
