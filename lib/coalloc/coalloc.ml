module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Engine = Gridbw_sim.Engine
module Online = Gridbw_core.Online
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Rng = Gridbw_prng.Rng
module Dist = Gridbw_prng.Dist

type job = { id : int; transfer : Request.t; cpu_seconds : float }

let job ~id ~transfer ~cpu_seconds =
  if cpu_seconds <= 0. || not (Float.is_finite cpu_seconds) then
    invalid_arg "Coalloc.job: cpu_seconds must be positive and finite";
  { id; transfer; cpu_seconds }

type completion = { staged_at : float; cpu_start : float; finished_at : float }
type job_outcome = Completed of completion | Transfer_rejected of Types.reason

type result = {
  outcomes : (job * job_outcome) list;
  completed : int;
  rejected : int;
  mean_completion_time : float;
  mean_staging_time : float;
  mean_cpu_wait : float;
  makespan : float;
}

(* Per-site FIFO CPU pool. *)
type site = { mutable free : int; queue : (job * float) Queue.t }

let simulate fabric ~policy ~cpus_per_site jobs =
  if cpus_per_site <= 0 then invalid_arg "Coalloc.simulate: cpus_per_site must be positive";
  Policy.validate policy;
  List.iter
    (fun j ->
      if not (Request.routed_on j.transfer fabric) then
        invalid_arg (Printf.sprintf "Coalloc: job %d routed on unknown port" j.id))
    jobs;
  let engine = Engine.create () in
  let ctl = Online.create fabric in
  let sites =
    Array.init (Fabric.egress_count fabric) (fun _ ->
        { free = cpus_per_site; queue = Queue.create () })
  in
  let outcomes = ref [] in
  let record j outcome = outcomes := (j, outcome) :: !outcomes in
  let rec start_cpu engine site_idx =
    let site = sites.(site_idx) in
    if site.free > 0 && not (Queue.is_empty site.queue) then begin
      let j, staged_at = Queue.pop site.queue in
      site.free <- site.free - 1;
      let cpu_start = Engine.now engine in
      Engine.after engine ~delay:j.cpu_seconds (fun engine ->
          site.free <- site.free + 1;
          record j (Completed { staged_at; cpu_start; finished_at = Engine.now engine });
          start_cpu engine site_idx);
      start_cpu engine site_idx
    end
  in
  let submit j =
    Engine.schedule engine ~time:j.transfer.Request.ts (fun engine ->
        match Online.try_admit ctl policy j.transfer ~at:(Engine.now engine) with
        | Types.Rejected reason -> record j (Transfer_rejected reason)
        | Types.Accepted a ->
            let site_idx = j.transfer.Request.egress in
            Engine.schedule engine ~time:a.Allocation.tau (fun engine ->
                Queue.push (j, Engine.now engine) sites.(site_idx).queue;
                start_cpu engine site_idx))
  in
  List.iter submit
    (List.sort (fun a b -> Float.compare a.transfer.Request.ts b.transfer.Request.ts) jobs);
  Engine.run engine;
  let outcomes = List.sort (fun (a, _) (b, _) -> Int.compare a.id b.id) !outcomes in
  let completed_list =
    List.filter_map
      (fun (j, o) -> match o with Completed c -> Some (j, c) | Transfer_rejected _ -> None)
      outcomes
  in
  let n = List.length completed_list in
  let mean f =
    if n = 0 then 0.0
    else List.fold_left (fun acc jc -> acc +. f jc) 0.0 completed_list /. float_of_int n
  in
  {
    outcomes;
    completed = n;
    rejected = List.length outcomes - n;
    mean_completion_time = mean (fun (j, c) -> c.finished_at -. j.transfer.Request.ts);
    mean_staging_time = mean (fun (j, c) -> c.staged_at -. j.transfer.Request.ts);
    mean_cpu_wait = mean (fun (_, c) -> c.cpu_start -. c.staged_at);
    makespan =
      List.fold_left (fun acc (_, c) -> Float.max acc c.finished_at) 0.0 completed_list;
  }

let random_jobs rng spec ~mean_cpu_seconds =
  if mean_cpu_seconds <= 0. then invalid_arg "Coalloc.random_jobs: mean_cpu_seconds must be positive";
  let requests = Gridbw_workload.Gen.generate rng spec in
  List.map
    (fun (r : Request.t) ->
      job ~id:r.id ~transfer:r ~cpu_seconds:(Dist.exponential rng ~mean:mean_cpu_seconds))
    requests
