(** Minimal discrete-event simulation engine.

    Events are closures scheduled at absolute times; the engine pops them in
    chronological order (FIFO among ties) and advances a virtual clock.
    Handlers may schedule further events, including at the current time. *)

type t

val create : ?obs:Gridbw_obs.Obs.ctx -> ?start:float -> unit -> t
(** Fresh engine with the clock at [start] (default 0).  With [obs], every
    dispatch emits an [Event.Dispatch] trace record and feeds the
    [engine_dispatches] counter and [engine_queue_depth] histogram. *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> time:float -> (t -> unit) -> unit
(** Schedule a handler at absolute [time]; must not be in the past. *)

val after : t -> delay:float -> (t -> unit) -> unit
(** Schedule a handler [delay] seconds from now ([delay >= 0]). *)

val pending : t -> int
(** Number of events not yet executed. *)

val step : t -> bool
(** Execute the earliest pending event.  [false] if none remained. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue is exhausted, or until the next event is
    strictly past [until] (the clock is then advanced to [until]). *)
