module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event

type t = { mutable clock : float; queue : (t -> unit) Event_queue.t; obs : Obs.ctx }

let create ?(obs = Obs.disabled) ?(start = 0.0) () =
  { clock = start; queue = Event_queue.create (); obs }

let now t = t.clock

let schedule t ~time handler =
  if time < t.clock then invalid_arg "Engine.schedule: time is in the past";
  Event_queue.push t.queue ~time handler

let after t ~delay handler =
  if delay < 0. then invalid_arg "Engine.after: negative delay";
  schedule t ~time:(t.clock +. delay) handler

let pending t = Event_queue.length t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, handler) ->
      t.clock <- time;
      if t.obs.Obs.enabled then begin
        Obs.count t.obs "engine_dispatches";
        Obs.observe t.obs "engine_queue_depth" (float_of_int (pending t));
        Obs.event t.obs (fun () -> Event.Dispatch { time; pending = pending t })
      end;
      handler t;
      true

let run ?until t =
  let continue () =
    match (Event_queue.peek t.queue, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some (time, _), Some limit -> time <= limit
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | _ -> ()
