(** Priority queue of timestamped events.

    A binary min-heap keyed by time.  Ties are broken by insertion order
    (FIFO among simultaneous events), which keeps simulations deterministic
    regardless of heap internals. *)

type 'a t

val create : ?initial_capacity:int -> unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at [time].  [time] must be finite. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, FIFO among equal times. *)

val peek : 'a t -> (float * 'a) option
(** Earliest event without removing it. *)

val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit

val drain : 'a t -> (float * 'a) list
(** Pop everything; returns events in chronological order. *)
