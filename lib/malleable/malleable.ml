module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Rate_profile = Gridbw_alloc.Rate_profile
module Ledger = Gridbw_alloc.Ledger
module Port = Gridbw_alloc.Port
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Span = Gridbw_obs.Span
module Spec = Gridbw_workload.Spec
module Types = Gridbw_core.Types
module Policy = Gridbw_core.Policy
module Runtime = Gridbw_core.Runtime
module Online = Gridbw_core.Online
module Emit = Gridbw_core.Emit
module Flexible = Gridbw_core.Flexible
module Scheduler = Gridbw_core.Scheduler

type config = {
  book_ahead : float;  (** announce (and decide) each request this long before its [ts] *)
  reshape : bool;  (** re-solve pending profiles when an admit would otherwise fail *)
  kappa : float;
      (** compensation limit: profile steps stay within [kappa * min_rate]
          (and [max_rate]); [infinity] removes the bound *)
  constant_step : bool;
      (** parity mode: a single constant MinRate step through the shared
          online controller — bit-identical to GREEDY by construction *)
}

let default = { book_ahead = 0.; reshape = true; kappa = infinity; constant_step = false }

let name config =
  if config.constant_step then "malleable-constant"
  else
    match (config.book_ahead > 0., config.reshape) with
    | false, true -> "malleable"
    | false, false -> "malleable(no-reshape)"
    | true, true -> Printf.sprintf "malleable(ba=%g)" config.book_ahead
    | true, false -> Printf.sprintf "malleable(ba=%g,no-reshape)" config.book_ahead

let validate config =
  if config.book_ahead < 0. || not (Float.is_finite config.book_ahead) then
    invalid_arg "Malleable: book_ahead must be non-negative and finite";
  if not (config.kappa >= 1.) then invalid_arg "Malleable: kappa must be >= 1"

let check_routing fabric requests =
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Malleable: request %d routed on unknown port" r.id))
    requests

(* --- the step-profile solver --- *)

(* The latest admissible end of the last step: a hair inside
   {!Allocation.meets_deadline}'s relative slack, so the few-ulp
   extension needed to close a near-rigid volume bitwise (the constant
   engines book the same overhang as [tau > tf]) stays well within every
   validator's deadline bound. *)
let deadline_limit (r : Request.t) = r.tf +. (1e-10 *. Float.max 1. (Float.abs r.tf))

(* Water-fill [r]'s volume into the ledger's free capacity over
   [\[start, tf)]: walk the merged breakpoint segments of the two ports,
   fill each at the water level — the *smallest* rate [g] with
   [Σ min (g, cap_i)·len_i = volume], where [cap_i] is the segment's free
   capacity (min of both headrooms, clamped to [max_rate]) — and solve
   the final step's rate so the profile's Kahan integral equals [volume]
   exactly.  Spreading the volume at the lowest feasible peak leaves the
   most headroom for everyone after; in particular, whenever a constant
   min-rate reservation fits (the rigid engines' acceptance test), the
   level degenerates to exactly that constant — the dominance argument
   over GREEDY.

   The bitwise-close step: float rates reachable by ulp-stepping the last
   rate give integral values spaced ~1-2 ulps of [volume] apart, so a
   target can fall between two representable sums.  The solver therefore
   walks the last step's end by ulps too (down within the segment, or —
   on the last segment only — past [tf] within the deadline slack,
   guarded by a fits-check over the unmeasured sliver), and as a final
   fallback fills a segment just *under* the target so a later segment
   closes the few-ulp residue with a tiny step on a much finer grid. *)
let solve ?(peak_bound = infinity) ledger (r : Request.t) ~start =
  if not (start < r.tf) then None
  else begin
    let in_port = Port.Ingress r.ingress and out_port = Port.Egress r.egress in
    let inside = List.filter (fun t -> t > start && t < r.tf) in
    let bounds =
      List.sort_uniq Float.compare
        ((start :: r.tf :: inside (Ledger.breakpoints ledger in_port))
        @ inside (Ledger.breakpoints ledger out_port))
      |> Array.of_list
    in
    let n = Array.length bounds - 1 in
    let volume = r.volume in
    let limit = deadline_limit r in
    let rate_cap = Float.min r.max_rate (Float.max (Request.min_rate r) peak_bound) in
    let caps =
      Array.init n (fun i ->
          let from_ = bounds.(i) and until = bounds.(i + 1) in
          Float.min rate_cap
            (Float.min
               (Ledger.headroom_over ledger in_port ~from_ ~until)
               (Ledger.headroom_over ledger out_port ~from_ ~until)))
    in
    (* The water level.  Walk segments by ascending cap: a level in
       (cap_{k-1}, cap_k] fills saturated segments at their cap and the
       rest at the level, so the first k where the needed level drops to
       [cap_k] or below wins.  When even cap-filling everything falls
       short (near-rigid float slop), the level is [infinity] — fill at
       cap and let the closing walks make up the last ulps. *)
    let level =
      let idx = Array.init n (fun i -> i) in
      Array.sort (fun a b -> Float.compare caps.(a) caps.(b)) idx;
      let total_len =
        Array.fold_left
          (fun acc i -> if caps.(i) > 0. then acc +. (bounds.(i + 1) -. bounds.(i)) else acc)
          0. idx
      in
      let rec scan k below rest_len =
        if k >= n || not (rest_len > 0.) then infinity
        else begin
          let i = idx.(k) in
          if caps.(i) > 0. then begin
            let g = (volume -. below) /. rest_len in
            if g <= caps.(i) then (if g > 0. then g else caps.(i))
            else
              let len = bounds.(i + 1) -. bounds.(i) in
              scan (k + 1) (below +. (caps.(i) *. len)) (rest_len -. len)
          end
          else scan (k + 1) below rest_len
        end
      in
      scan 0 0. total_len
    in
    (* One Kahan step on the running (sum, comp) state — the exact
       operation sequence of {!Rate_profile.integral}, so closing against
       this predicts the final profile's integral bit-for-bit. *)
    let final ~sum ~comp g ~from_ u = sum +. ((g *. (u -. from_)) -. comp) in
    let push ~sum ~comp contrib =
      let y = contrib -. comp in
      let sum' = sum +. y in
      ((sum' -. sum) -. y, sum')
    in
    (* Ulp-walk the closing rate from the residual-based guess; returns
       the exact-closing rate if one is representable at this segment
       end, plus the best under-target rate seen (the partial-fill
       fallback). *)
    let rate_walk ~sum ~comp ~from_ ~cap u =
      let len = u -. from_ in
      if not (len > 0.) then (None, None)
      else begin
        let g0 =
          let g = (volume -. sum) /. len in
          if Float.is_finite g && g > 0. then Float.min g cap else cap
        in
        let best = ref None in
        let note g = match !best with Some b when b >= g -> () | _ -> best := Some g in
        let rec walk g steps up down =
          if steps > 1024 || not (g > 0.) || g > cap then None
          else
            let v = final ~sum ~comp g ~from_ u in
            if v = volume then Some g
            else if v < volume then begin
              note g;
              if down then None else walk (Float.succ g) (steps + 1) true down
            end
            else if up then None
            else walk (Float.pred g) (steps + 1) up true
        in
        (walk g0 0 false false, !best)
      end
    in
    let close_down ~sum ~comp ~from_ ~cap until =
      let rec down u k =
        if k > 8 || not (u > from_) then None
        else
          match rate_walk ~sum ~comp ~from_ ~cap u with
          | Some g, _ -> Some (g, u)
          | None, _ -> down (Float.pred u) (k + 1)
      in
      down until 0
    in
    (* Last-segment only: extend the end past [tf] by ulps, inside the
       deadline slack.  The extension sliver was not part of the headroom
       measurement, so a fits-check guards it against a reservation that
       begins exactly there. *)
    let close_up ~sum ~comp ~from_ ~cap until =
      let rec up u k =
        if k > 64 || u > limit then None
        else
          match rate_walk ~sum ~comp ~from_ ~cap u with
          | Some g, _
            when Ledger.fits_interval ledger ~ingress:r.ingress ~egress:r.egress ~bw:g
                   ~from_:until ~until:u -> Some (g, u)
          | _ -> up (Float.succ u) (k + 1)
      in
      up (Float.succ until) 0
    in
    let seg from_ until rate = { Rate_profile.from_; until; rate } in
    let rec fill acc sum comp i =
      if i >= n then None
      else begin
        let from_ = bounds.(i) and until = bounds.(i + 1) in
        let cap = caps.(i) in
        let pour = Float.min level cap in
        if not (cap > 0.) then fill acc sum comp (i + 1)
        else if i = n - 1 then
          (* the profile must close here or nowhere *)
          let closed =
            match close_down ~sum ~comp ~from_ ~cap until with
            | Some _ as c -> c
            | None -> close_up ~sum ~comp ~from_ ~cap until
          in
          match closed with
          | Some (g, u) -> Some (Rate_profile.make (List.rev (seg from_ u g :: acc)))
          | None -> None
        else begin
          let v_full = final ~sum ~comp pour ~from_ until in
          if v_full < volume then begin
            let comp', sum' = push ~sum ~comp (pour *. (until -. from_)) in
            fill (seg from_ until pour :: acc) sum' comp' (i + 1)
          end
          else
            (* the level pour reaches the volume inside this segment; the
               closing rate may exceed the level up to the segment cap *)
            match close_down ~sum ~comp ~from_ ~cap until with
            | Some (g, u) -> Some (Rate_profile.make (List.rev (seg from_ u g :: acc)))
            | None -> (
                (* representable-grid miss: fill just under the target and
                   let a later segment close the few-ulp residue *)
                match snd (rate_walk ~sum ~comp ~from_ ~cap until) with
                | None -> fill acc sum comp (i + 1)
                | Some g ->
                    let comp', sum' = push ~sum ~comp (g *. (until -. from_)) in
                    fill (seg from_ until g :: acc) sum' comp' (i + 1))
        end
      end
    in
    fill [] 0. 0. 0
  end

let reserve_profile ledger (q : Request.t) p =
  List.iter
    (fun (s : Rate_profile.seg) ->
      Ledger.reserve_interval ledger ~ingress:q.ingress ~egress:q.egress ~bw:s.rate
        ~from_:s.from_ ~until:s.until)
    (Rate_profile.segments p)

let release_profile ledger (q : Request.t) p =
  List.iter
    (fun (s : Rate_profile.seg) ->
      Ledger.release_interval ledger ~ingress:q.ingress ~egress:q.egress ~bw:s.rate
        ~from_:s.from_ ~until:s.until)
    (Rate_profile.segments p)

(* --- admission-time reshaping --- *)

let edf_compare (a : Request.t) (b : Request.t) =
  match Float.compare a.tf b.tf with 0 -> Int.compare a.id b.id | c -> c

(* The admit of [r] failed: release every admitted-but-not-yet-started
   profile on a scratch copy of the ledger and water-fill all of them
   plus [r] back in EDF order.  All-or-nothing: only if every transfer
   (including [r]) closes exactly does the scratch become the live
   ledger; otherwise it is dropped and the original state is untouched —
   the rollback is free because nothing was mutated in place. *)
let try_reshape ~kappa ledger admitted rev_order (r : Request.t) ~now =
  let pending =
    List.filter_map
      (fun id ->
        let a = Hashtbl.find admitted id in
        match a.Allocation.profile with
        | Some p when Rate_profile.start p > now -> Some (a.Allocation.request, p)
        | _ -> None)
      (List.rev rev_order)
  in
  if pending = [] then None
  else begin
    let scratch = Ledger.restore (Ledger.fabric !ledger) (Ledger.dump !ledger) in
    List.iter (fun (q, p) -> release_profile scratch q p) pending;
    let items = List.sort edf_compare (r :: List.map fst pending) in
    let solved =
      List.fold_left
        (fun acc (q : Request.t) ->
          match acc with
          | None -> None
          | Some pairs -> (
              match
                solve ~peak_bound:(kappa *. Request.min_rate q) scratch q
                  ~start:(Float.max now q.ts)
              with
              | None -> None
              | Some p ->
                  reserve_profile scratch q p;
                  Some ((q, p) :: pairs)))
        (Some []) items
    in
    match solved with
    | None -> None
    | Some pairs ->
        ledger := scratch;
        let pairs = List.rev pairs (* EDF order *) in
        let new_profile = ref None in
        let revised =
          List.filter_map
            (fun ((q : Request.t), p) ->
              if q.id = r.id then begin
                new_profile := Some p;
                None
              end
              else Some (q.id, p))
            pairs
        in
        Some (Option.get !new_profile, Array.of_list revised)
  end

(* --- trace emission --- *)

(* The profiled twin of {!Emit.emit_decision}'s accept arm: same
   counters, but the trace record is a Reshape carrying the step
   schedule (and any pending-profile revisions) instead of an Accept. *)
let emit_reshape obs ~time ?shard (r : Request.t) profile revised =
  if obs.Obs.enabled then begin
    Obs.count obs "admit_requests_total";
    Obs.count obs "admit_accepted_total";
    if Array.length revised > 0 then Obs.count obs "reshape_commits_total";
    Obs.event obs (fun () ->
        Event.Reshape
          {
            time;
            id = r.id;
            ingress = r.ingress;
            egress = r.egress;
            volume = r.volume;
            ts = r.ts;
            tf = r.tf;
            max_rate = r.max_rate;
            profile = Rate_profile.to_triples profile;
            revised = Array.map (fun (id, p) -> (id, Rate_profile.to_triples p)) revised;
            shard;
          })
  end

(* The rejecting port and its spare bandwidth over the request window —
   the ledger-based analogue of {!Emit.spike_port}, traced-reject only. *)
let blocked_port obs ledger (r : Request.t) ~start =
  if (not (Obs.tracing obs)) || start >= r.tf then None
  else begin
    let hi = Ledger.headroom_over ledger (Port.Ingress r.ingress) ~from_:start ~until:r.tf in
    let he = Ledger.headroom_over ledger (Port.Egress r.egress) ~from_:start ~until:r.tf in
    if hi <= he then Some ((Event.Ingress, r.ingress), hi)
    else Some ((Event.Egress, r.egress), he)
  end

(* --- the engine --- *)

(* Parity mode: the malleable loop degenerated to one constant MinRate
   step per request, decided through the shared online controller in
   arrival order — the same body as {!Flexible.greedy}, so the decision
   stream is bit-identical to GREEDY (property-gated in the harness,
   PR 1 style). *)
let run_constant ctx fabric requests =
  let obs = Runtime.observed ctx in
  let ictx = Runtime.make ~obs () in
  check_routing fabric requests;
  let ctl = Online.create fabric in
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  let decisions =
    List.map
      (fun (r : Request.t) ->
        if Obs.tracing obs then Emit.emit_arrival obs seqs r;
        (r, Online.try_admit ~ctx:ictx ctl Policy.Min_rate r ~at:r.ts))
      (Flexible.arrival_order requests)
  in
  Flexible.collect requests decisions

let run config ?(ctx = Runtime.default) fabric requests =
  validate config;
  if config.constant_step then run_constant ctx fabric requests
  else begin
    let obs = Runtime.observed ctx in
    check_routing fabric requests;
    let ledger = ref (Ledger.create fabric) in
    let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
    let admitted : (int, Allocation.t) Hashtbl.t = Hashtbl.create 64 in
    let rev_order = ref [] in
    let rev_rejected = ref [] in
    let order =
      List.map (fun (r : Request.t) -> (r.ts -. config.book_ahead, r)) requests
      |> List.sort (fun (ta, (a : Request.t)) (tb, (b : Request.t)) ->
             match Float.compare ta tb with 0 -> Int.compare a.id b.id | c -> c)
    in
    let admit now (r : Request.t) profile revised =
      Array.iter
        (fun (rid, p) ->
          let old = Hashtbl.find admitted rid in
          Hashtbl.replace admitted rid
            (Allocation.of_profile ~request:old.Allocation.request p))
        revised;
      Hashtbl.replace admitted r.id (Allocation.of_profile ~request:r profile);
      rev_order := r.id :: !rev_order;
      emit_reshape obs ~time:now ?shard:ctx.Runtime.shard r profile revised
    in
    let decide now (r : Request.t) =
      let start = Float.max now r.ts in
      match solve ~peak_bound:(config.kappa *. Request.min_rate r) !ledger r ~start with
      | Some profile ->
          reserve_profile !ledger r profile;
          admit now r profile [||]
      | None -> (
          let reshaped =
            if config.reshape then
              try_reshape ~kappa:config.kappa ledger admitted !rev_order r ~now
            else None
          in
          match reshaped with
          | Some (profile, revised) -> admit now r profile revised
          | None ->
              let blocked = blocked_port obs !ledger r ~start in
              rev_rejected := (r, Types.Port_saturated) :: !rev_rejected;
              Emit.emit_decision obs ~time:now ?blocked ?shard:ctx.Runtime.shard r
                (Types.Rejected Types.Port_saturated))
    in
    List.iter
      (fun (now, (r : Request.t)) ->
        if Obs.tracing obs then Emit.emit_arrival obs seqs ~time:now r;
        let span = ctx.Runtime.span in
        let t0 = match span with Some _ -> Span.now_ns () | None -> 0. in
        let p0 = match span with Some _ -> Ledger.probe_count !ledger | None -> 0 in
        Obs.span obs "admit" (fun () -> decide now r);
        match span with
        | None -> ()
        | Some sp ->
            Span.record sp Span.Admit_search (Span.now_ns () -. t0);
            Span.add_probes sp (Ledger.probe_count !ledger - p0))
      order;
    {
      Types.all = requests;
      accepted = List.rev_map (fun id -> Hashtbl.find admitted id) !rev_order |> List.rev;
      rejected = List.rev !rev_rejected;
    }
  end

let scheduler config =
  Scheduler.make ~name:(name config) (fun ?ctx spec requests ->
      run config ?ctx spec.Spec.fabric requests)

let engines () = [ scheduler default; scheduler { default with book_ahead = 7. } ]
