(** The MALLEABLE admission engine: step-profile reservations with
    in-advance booking and admission-time reshaping.

    Where the constant engines (GREEDY/WINDOW) assign each admitted
    request one rate over one interval, MALLEABLE assigns a
    {!Gridbw_alloc.Rate_profile.t} — a step function whose rate changes
    only at ledger breakpoints.  The transfer window [\[ts, tf)] and the
    volume are fixed by the request; the engine is free to vary the rate
    over time within [\[0, max_rate\]] and the ports' spare capacity
    (constraint set (1) of the paper, §4), which strictly dominates any
    constant-rate feasibility: every constant schedule is a one-step
    profile.

    Three ingredients:

    - {b Water-fill solve}: the request's volume is poured into the
      merged breakpoint segments of its two ports, earliest-first, each
      segment capped by [min (max_rate, headroom_in, headroom_out)].
      The closing step's rate is solved so the profile's Kahan
      {!Gridbw_alloc.Rate_profile.integral} equals the volume
      {e bit-for-bit} — the engine walks representable floats (rate and
      segment-end ulp walks) rather than accepting a near-miss.

    - {b In-advance booking} ([book_ahead]): each request is decided
      [book_ahead] before its start time, in announce order
      [(ts - book_ahead, id)] — the same discipline as the WINDOW
      deferred variants, so future windows are visible at decision time.

    - {b Reshaping} ([reshape]): when a request does not fit the current
      free capacity, the engine re-solves the profiles of every admitted
      transfer that has not yet started, together with the new request,
      in EDF order on a scratch ledger.  All-or-nothing: only if every
      transfer closes exactly is the scratch adopted and one atomic
      {!Gridbw_obs.Event.Reshape} record journaled (carrying the new
      profile and every revision); otherwise the live ledger is
      untouched.  Recovery replays that single record transactionally —
      both-or-neither. *)

type config = {
  book_ahead : float;
      (** decide each request this long before its [ts] (>= 0, finite) *)
  reshape : bool;
      (** when an admit fails, try re-solving pending profiles before
          rejecting *)
  kappa : float;
      (** compensation limit (>= 1): no profile step exceeds
          [kappa * min_rate].  Bounding the peak keeps one flexible
          request from claiming far more than its fair constant share
          while squeezing past a busy stretch — unbounded compensation
          admits volume hogs whose capacity cost shows up as later
          rejects.  [infinity] removes the bound. *)
  constant_step : bool;
      (** parity mode: one constant MinRate step per request, decided
          through the shared online controller in arrival order —
          bit-identical to the GREEDY engine (property-gated) *)
}

val default : config
(** [{ book_ahead = 0.; reshape = true; kappa = infinity; constant_step = false }]. *)

val name : config -> string
(** "malleable", "malleable(ba=7)", "malleable(no-reshape)",
    "malleable(ba=7,no-reshape)" or "malleable-constant". *)

val deadline_limit : Gridbw_request.Request.t -> float
(** Latest admissible end of a profile's last step: [tf] plus a relative
    [1e-10] slack, strictly inside {!Gridbw_alloc.Allocation.meets_deadline}'s
    bound.  Exposed for the test suite. *)

val solve :
  ?peak_bound:float ->
  Gridbw_alloc.Ledger.t ->
  Gridbw_request.Request.t ->
  start:float ->
  Gridbw_alloc.Rate_profile.t option
(** Water-fill the request's volume into the ledger's free capacity over
    [\[start, tf)].  [Some p] satisfies: [Rate_profile.integral p] equals
    the volume bitwise, [peak p <= max_rate], every segment fits the free
    capacity of both ports, and [finish p <= deadline_limit r].  [None]
    when no such profile closes.  The ledger is not modified.

    [peak_bound] (default unbounded) additionally clamps every step to
    [max min_rate peak_bound] — the compensation limit the engine sets
    to [kappa * min_rate] so one flexible request cannot claim much more
    than its fair constant share while squeezing past a busy stretch. *)

val run :
  config ->
  ?ctx:Gridbw_core.Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  Gridbw_request.Request.t list ->
  Gridbw_core.Types.result
(** Run the engine over a full workload.  Accepted allocations carry
    their final (post-reshape) profiles in decision order.  With
    [ctx.store] attached, profiled accepts journal one
    {!Gridbw_obs.Event.Reshape} record each (instead of Accept);
    rejects journal Reject as usual. *)

val scheduler : config -> Gridbw_core.Scheduler.t
(** Package a configuration as a first-class engine for the harness,
    CLI and experiment tables. *)

val engines : unit -> Gridbw_core.Scheduler.t list
(** The default sweep pair: [malleable] and [malleable(ba=7)]. *)
