(** Global admission sequencer: the linearization witness.

    Every operation draws a [(ticket, at)] pair {e while holding the
    freeze on every shard it touches}, so for any one shard the ticket
    order of the operations it applies equals its application order, and
    [at] is monotone in ticket ([at = max (clock, ts)] with the clock
    ratcheting forward exactly like [Online]'s).  Replaying a concurrent
    history in ticket order on the single-shard ledger is therefore a
    legal sequential execution — the linearizability gate in
    [test_shard] and the fuzz harness replays exactly that. *)

type t

val create : unit -> t
(** Clock starts at [neg_infinity], matching [Online.create]. *)

val next : t -> ts:float -> int * float
(** Draw the next ticket; [at = max (clock, ts)] and the clock advances
    to [at].  Pass [ts = neg_infinity] to read the current clock (a
    cancel linearizes at "now"). *)

val now : t -> float
val restore_clock : t -> float -> unit
(** Recovery: restart the clock at the recovered journal's horizon. *)
