module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Fabric = Gridbw_topology.Fabric
module Live = Gridbw_alloc.Live
module Event_queue = Gridbw_sim.Event_queue

type rel_side = Ing | Egr

type reply =
  | Frozen of { op : int }
  | Probed of { op : int; ing : (bool * float) option; egr : (bool * float) option }
  | Cancel_probed of { op : int; active : bool }
  | Done of { op : int }

type msg =
  | Freeze of { op : int; k : reply -> unit }
  | Probe of { op : int; at : float; r : Request.t; bw : float option; k : reply -> unit }
  | Commit of { op : int; a : Allocation.t; k : reply -> unit }
  | Abort of { op : int; k : reply -> unit }
  | Cancel_probe of { op : int; at : float; id : int; k : reply -> unit }
  | Cancel_commit of { op : int; id : int; k : reply -> unit }

(* One live booking, per owned side.  A cross-shard allocation has one
   record on each shard, each with only its own side flagged; both sides
   of a same-shard allocation live in one record.  Flags drop as the
   release queue drains (or a cancel releases early); the record is
   removed when no owned side remains live. *)
type booking = {
  a : Allocation.t;
  mutable ing_live : bool;
  mutable egr_live : bool;
}

type t = {
  shard : int;
  part : Partition.t;
  live : Live.t;
  releases : (Allocation.t * rel_side) Event_queue.t;
  booked : (int, booking) Hashtbl.t;
  mutable clock : float;
  mutable frozen : int option;
  parked : msg Queue.t;
  resolved : (int, unit) Hashtbl.t option;  (* duplicate tolerance (explorer mode) *)
}

let create ?(track_duplicates = false) ~shard ~partition fabric =
  {
    shard;
    part = partition;
    live = Live.create fabric;
    releases = Event_queue.create ();
    booked = Hashtbl.create 64;
    clock = neg_infinity;
    frozen = None;
    parked = Queue.create ();
    resolved = (if track_duplicates then Some (Hashtbl.create 64) else None);
  }

let shard t = t.shard
let clock t = t.clock
let frozen t = t.frozen
let parked_count t = Queue.length t.parked
let booked_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.booked [] |> List.sort Int.compare
let ingress_used t i = Live.ingress_used t.live i
let egress_used t e = Live.egress_used t.live e
let probe_count t = Live.probe_count t.live

let active_ingress_count t =
  Hashtbl.fold
    (fun _ b acc ->
      if Partition.of_ingress t.part b.a.Allocation.request.Request.ingress = t.shard then acc + 1
      else acc)
    t.booked 0

let owns_ingress t i = Partition.of_ingress t.part i = t.shard
let owns_egress t e = Partition.of_egress t.part e = t.shard

let resolved t op = match t.resolved with Some h -> Hashtbl.mem h op | None -> false
let mark_resolved t op = match t.resolved with Some h -> Hashtbl.replace h op () | None -> ()

let release_side t (b : booking) side =
  let r = b.a.Allocation.request in
  (match side with
  | Ing ->
      if b.ing_live then begin
        Live.release_ingress t.live ~ingress:r.Request.ingress ~bw:b.a.Allocation.bw;
        b.ing_live <- false
      end
  | Egr ->
      if b.egr_live then begin
        Live.release_egress t.live ~egress:r.Request.egress ~bw:b.a.Allocation.bw;
        b.egr_live <- false
      end);
  if not (b.ing_live || b.egr_live) then Hashtbl.remove t.booked r.Request.id

(* Monotone clamp, never a raise: per-shard event times are monotone in
   live runs (ticket order), and a re-partitioned recovery replay may
   legitimately present an older timestamp for a port this shard just
   acquired. *)
let advance_to t time =
  if time > t.clock then t.clock <- time;
  let rec drain () =
    match Event_queue.peek t.releases with
    | Some (tau, (a, side)) when tau <= t.clock ->
        ignore (Event_queue.pop t.releases);
        (match Hashtbl.find_opt t.booked a.Allocation.request.Request.id with
        | Some b when b.a == a -> release_side t b side
        | _ -> () (* cancelled earlier: stale queue entry *));
        drain ()
    | _ -> ()
  in
  drain ()

let require_frozen t op what =
  match t.frozen with
  | Some o when o = op -> ()
  | _ -> invalid_arg (Printf.sprintf "Shard.Core: %s for op %d without freeze" what op)

let rec handle t msg =
  match msg with
  | Freeze { op; k } -> (
      match t.frozen with
      | None ->
          if resolved t op then k (Done { op })  (* late duplicate of a finished op *)
          else begin
            t.frozen <- Some op;
            k (Frozen { op })
          end
      | Some o when o = op -> k (Frozen { op })  (* duplicate delivery *)
      | Some _ -> Queue.push msg t.parked)
  | Probe { op; at; r; bw; k } ->
      if resolved t op then k (Done { op })
      else begin
        require_frozen t op "probe";
        advance_to t at;
        let probe_side fits used cap =
          match bw with
          | None -> (true, cap -. used)
          | Some bw -> (fits bw, cap -. used)
        in
        let ing =
          if owns_ingress t r.Request.ingress then
            Some
              (probe_side
                 (fun bw -> Live.fits_ingress t.live ~ingress:r.Request.ingress ~bw)
                 (Live.ingress_used t.live r.Request.ingress)
                 (Fabric.ingress_capacity (Live.fabric t.live) r.Request.ingress))
          else None
        in
        let egr =
          if owns_egress t r.Request.egress then
            Some
              (probe_side
                 (fun bw -> Live.fits_egress t.live ~egress:r.Request.egress ~bw)
                 (Live.egress_used t.live r.Request.egress)
                 (Fabric.egress_capacity (Live.fabric t.live) r.Request.egress))
          else None
        in
        k (Probed { op; ing; egr })
      end
  | Commit { op; a; k } ->
      if resolved t op then k (Done { op })
      else begin
        require_frozen t op "commit";
        let r = a.Allocation.request in
        let b = { a; ing_live = false; egr_live = false } in
        if owns_ingress t r.Request.ingress then begin
          Live.grab_ingress t.live ~ingress:r.Request.ingress ~bw:a.Allocation.bw;
          b.ing_live <- true;
          Event_queue.push t.releases ~time:a.Allocation.tau (a, Ing)
        end;
        if owns_egress t r.Request.egress then begin
          Live.grab_egress t.live ~egress:r.Request.egress ~bw:a.Allocation.bw;
          b.egr_live <- true;
          Event_queue.push t.releases ~time:a.Allocation.tau (a, Egr)
        end;
        if b.ing_live || b.egr_live then Hashtbl.replace t.booked r.Request.id b;
        resolve t op k
      end
  | Abort { op; k } ->
      if resolved t op then k (Done { op }) else begin
        require_frozen t op "abort";
        resolve t op k
      end
  | Cancel_probe { op; at; id; k } ->
      if resolved t op then k (Done { op })
      else begin
        require_frozen t op "cancel-probe";
        advance_to t at;
        k (Cancel_probed { op; active = Hashtbl.mem t.booked id })
      end
  | Cancel_commit { op; id; k } ->
      if resolved t op then k (Done { op })
      else begin
        require_frozen t op "cancel-commit";
        (match Hashtbl.find_opt t.booked id with
        | Some b ->
            release_side t b Ing;
            release_side t b Egr
        | None -> ());
        resolve t op k
      end

and resolve t op k =
  mark_resolved t op;
  t.frozen <- None;
  k (Done { op });
  pump t

(* Parked messages are always [Freeze]s (probe/commit of the freeze
   holder arrive only while it already holds the freeze).  Handling one
   may re-freeze the shard, which stops the pump until the next
   resolution. *)
and pump t =
  if t.frozen = None then
    match Queue.take_opt t.parked with
    | Some m ->
        handle t m;
        pump t
    | None -> ()

(* --- recovery rebuild --- *)

let restore_clock t time = if time > t.clock then t.clock <- time

let restore_grab t side (a : Allocation.t) =
  let r = a.Allocation.request in
  let b =
    match Hashtbl.find_opt t.booked r.Request.id with
    | Some b -> b
    | None ->
        let b = { a; ing_live = false; egr_live = false } in
        Hashtbl.replace t.booked r.Request.id b;
        b
  in
  match side with
  | Ing ->
      Live.grab_ingress t.live ~ingress:r.Request.ingress ~bw:a.Allocation.bw;
      b.ing_live <- true
  | Egr ->
      Live.grab_egress t.live ~egress:r.Request.egress ~bw:a.Allocation.bw;
      b.egr_live <- true

let restore_release t side id =
  match Hashtbl.find_opt t.booked id with
  | Some b -> release_side t b side
  | None -> ()

let restore_queue t entries =
  List.iter (fun ((a : Allocation.t), side) -> Event_queue.push t.releases ~time:a.Allocation.tau (a, side)) entries
