(** Unbounded FIFO mailbox between domains (mutex + condition).

    Each shard domain drains exactly one mailbox; coordinators on any
    thread may send.  FIFO order per mailbox is part of the two-phase
    protocol's correctness argument: a [Commit] enqueued before a later
    [Freeze] is applied before it. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Raises [Invalid_argument] on a closed mailbox. *)

val recv : 'a t -> 'a option
(** Blocks until a message is available; [None] once the mailbox is
    closed and drained. *)

val close : 'a t -> unit
(** Wakes every blocked receiver; pending messages are still drained. *)

val length : 'a t -> int
