module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Fabric = Gridbw_topology.Fabric
module Live = Gridbw_alloc.Live
module Event_queue = Gridbw_sim.Event_queue
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Store = Gridbw_store.Store

type hist_op = H_admit of Request.t | H_cancel of { id : int; bw : float }
type hist_entry = { ticket : int; at : float; op : hist_op; ok : Types.decision option }

type t = {
  policy : Policy.t;
  fabric : Fabric.t;
  part : Partition.t;
  seq : Sequencer.t;
  cores : Core.t array;
  boxes : Core.msg Mailbox.t array option;  (* None: inline (single-threaded) mode *)
  mutable domains : unit Domain.t list;
  journal : Store.t option;
  jlock : Mutex.t;
  mutable jseq : int;
  mutable jdirty : bool;
  next_op : int Atomic.t;
  hist : (hist_entry list ref * Mutex.t) option;
  mutable stopped : bool;
}

let reason_name r = Format.asprintf "%a" Types.pp_reason r

let create ?journal ?(record = false) ?(spawn = true) ~shards policy fabric =
  Policy.validate policy;
  let part = Partition.make ~shards in
  let cores = Array.init shards (fun s -> Core.create ~shard:s ~partition:part fabric) in
  let boxes = if spawn then Some (Array.init shards (fun _ -> Mailbox.create ())) else None in
  let t =
    {
      policy;
      fabric;
      part;
      seq = Sequencer.create ();
      cores;
      boxes;
      domains = [];
      journal;
      jlock = Mutex.create ();
      jseq = 0;
      jdirty = false;
      next_op = Atomic.make 0;
      hist = (if record then Some (ref [], Mutex.create ()) else None);
      stopped = false;
    }
  in
  (match boxes with
  | None -> ()
  | Some boxes ->
      t.domains <-
        Array.to_list
          (Array.mapi
             (fun s box ->
               Domain.spawn (fun () ->
                   let core = cores.(s) in
                   let rec loop () =
                     match Mailbox.recv box with
                     | Some msg ->
                         Core.handle core msg;
                         loop ()
                     | None -> ()
                   in
                   loop ()))
             boxes));
  t

let shards t = Array.length t.cores
let fabric t = t.fabric
let policy t = t.policy
let now t = Sequencer.now t.seq
let active_count t = Array.fold_left (fun acc c -> acc + Core.active_ingress_count c) 0 t.cores
let probe_count t = Array.fold_left (fun acc c -> acc + Core.probe_count c) 0 t.cores
let ingress_used t i = Core.ingress_used t.cores.(Partition.of_ingress t.part i) i
let egress_used t e = Core.egress_used t.cores.(Partition.of_egress t.part e) e
let dirty t = t.jdirty

let post t s msg =
  match t.boxes with
  | Some boxes -> Mailbox.send boxes.(s) msg
  | None -> Core.handle t.cores.(s) msg

(* --- synchronous RPC over the mailboxes --- *)

type cell = { m : Mutex.t; c : Condition.t; mutable v : Core.reply option }

let cell () = { m = Mutex.create (); c = Condition.create (); v = None }

let fill cell r =
  Mutex.lock cell.m;
  cell.v <- Some r;
  Condition.signal cell.c;
  Mutex.unlock cell.m

let await cell =
  Mutex.lock cell.m;
  while cell.v = None do
    Condition.wait cell.c cell.m
  done;
  let v = Option.get cell.v in
  Mutex.unlock cell.m;
  v

let rpc t s make_msg =
  let c = cell () in
  post t s (make_msg (fill c));
  await c

(* --- journaling (inside the freeze window, under one lock) --- *)

let with_jlock t f =
  Mutex.lock t.jlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.jlock) f

let journal_arrival_and t ~at (r : Request.t) ev =
  match t.journal with
  | None -> ()
  | Some st ->
      with_jlock t (fun () ->
          Store.log st
            (Event.Arrival
               {
                 time = at;
                 seq = t.jseq;
                 id = r.Request.id;
                 ingress = r.Request.ingress;
                 egress = r.Request.egress;
                 volume = r.Request.volume;
                 ts = r.Request.ts;
                 tf = r.Request.tf;
                 max_rate = r.Request.max_rate;
               });
          t.jseq <- t.jseq + 1;
          Store.log st ev;
          t.jdirty <- true)

let journal_event t ev =
  match t.journal with
  | None -> ()
  | Some st ->
      with_jlock t (fun () ->
          Store.log st ev;
          t.jdirty <- true)

let record t entry =
  match t.hist with
  | None -> ()
  | Some (r, m) ->
      Mutex.lock m;
      r := entry :: !r;
      Mutex.unlock m

let history t =
  match t.hist with
  | None -> []
  | Some (r, m) ->
      Mutex.lock m;
      let l = !r in
      Mutex.unlock m;
      List.sort (fun a b -> Int.compare a.ticket b.ticket) l

(* --- admission --- *)

let expect_probed = function
  | Core.Probed { ing; egr; _ } -> (ing, egr)
  | _ -> invalid_arg "Shard.Engine: unexpected reply to probe"

let decision_event ~at ~shard ?blocked (r : Request.t) = function
  | Types.Accepted a ->
      Event.Accept
        {
          time = at;
          id = r.Request.id;
          ingress = r.Request.ingress;
          egress = r.Request.egress;
          volume = r.Request.volume;
          ts = r.Request.ts;
          tf = r.Request.tf;
          max_rate = r.Request.max_rate;
          bw = a.Allocation.bw;
          sigma = a.Allocation.sigma;
          shard = Some shard;
        }
  | Types.Rejected reason ->
      let port, headroom =
        match blocked with Some (p, h) -> (Some p, Some h) | None -> (None, None)
      in
      Event.Reject
        { time = at; id = r.Request.id; reason = reason_name reason; port; headroom; shard = Some shard }

let try_admit ?(obs = Obs.disabled) t (r : Request.t) =
  let s1, s2 = Partition.involved t.part ~ingress:r.Request.ingress ~egress:r.Request.egress in
  let op = Atomic.fetch_and_add t.next_op 1 in
  (* phase 1: freeze in ascending shard order (deadlock-free), then
     sequence — the linearization point. *)
  ignore (rpc t s1 (fun k -> Core.Freeze { op; k }));
  Option.iter (fun s -> ignore (rpc t s (fun k -> Core.Freeze { op; k }))) s2;
  let ticket, at = Sequencer.next t.seq ~ts:r.Request.ts in
  let bw = Policy.assign t.policy r ~now:at in
  let p1 = expect_probed (rpc t s1 (fun k -> Core.Probe { op; at; r; bw; k })) in
  let p2 = Option.map (fun s -> expect_probed (rpc t s (fun k -> Core.Probe { op; at; r; bw; k }))) s2 in
  let pick f = match (p1, p2) with
    | (a, b), None -> (match f (a, b) with Some v -> v | None -> invalid_arg "Shard.Engine: side not probed")
    | (a, b), Some (a', b') -> (
        match f (a, b) with
        | Some v -> v
        | None -> ( match f (a', b') with Some v -> v | None -> invalid_arg "Shard.Engine: side not probed"))
  in
  let ing_ok, head_in = pick fst in
  let egr_ok, head_out = pick snd in
  let decision =
    match bw with
    | None -> Types.Rejected Types.Deadline_unreachable
    | Some bw ->
        if ing_ok && egr_ok then
          Types.Accepted (Allocation.make ~request:r ~bw ~sigma:(Float.max at r.Request.ts))
        else Types.Rejected Types.Port_saturated
  in
  (* the deciding shard recorded on the journal is the ingress owner *)
  let dshard = Partition.of_ingress t.part r.Request.ingress in
  let blocked =
    match decision with
    | Types.Rejected Types.Port_saturated ->
        (* same tighter-side rule as Online.blocking_port *)
        if head_in <= head_out then Some ((Event.Ingress, r.Request.ingress), head_in)
        else Some ((Event.Egress, r.Request.egress), head_out)
    | _ -> None
  in
  let ev = decision_event ~at ~shard:dshard ?blocked r decision in
  (* journal inside the freeze window: per-port record order = ticket order *)
  journal_arrival_and t ~at r ev;
  (* phase 2 *)
  (match decision with
  | Types.Accepted a ->
      post t s1 (Core.Commit { op; a; k = ignore });
      Option.iter (fun s -> post t s (Core.Commit { op; a; k = ignore })) s2
  | Types.Rejected _ ->
      post t s1 (Core.Abort { op; k = ignore });
      Option.iter (fun s -> post t s (Core.Abort { op; k = ignore })) s2);
  record t { ticket; at; op = H_admit r; ok = Some decision };
  if obs.Obs.enabled then begin
    Obs.count obs "admit_requests_total";
    (match decision with
    | Types.Accepted _ -> Obs.count obs "admit_accepted_total"
    | Types.Rejected _ -> Obs.count obs "admit_rejected_total");
    Obs.event obs (fun () -> ev)
  end;
  decision

let cancel ?(obs = Obs.disabled) t (a : Allocation.t) =
  let r = a.Allocation.request in
  let id = r.Request.id in
  let s1, s2 = Partition.involved t.part ~ingress:r.Request.ingress ~egress:r.Request.egress in
  let op = Atomic.fetch_and_add t.next_op 1 in
  ignore (rpc t s1 (fun k -> Core.Freeze { op; k }));
  Option.iter (fun s -> ignore (rpc t s (fun k -> Core.Freeze { op; k }))) s2;
  (* a cancel linearizes at the current clock, like Online.preempt *)
  let ticket, at = Sequencer.next t.seq ~ts:neg_infinity in
  let active_of = function
    | Core.Cancel_probed { active; _ } -> active
    | _ -> invalid_arg "Shard.Engine: unexpected reply to cancel-probe"
  in
  let a1 = active_of (rpc t s1 (fun k -> Core.Cancel_probe { op; at; id; k })) in
  let a2 = Option.map (fun s -> active_of (rpc t s (fun k -> Core.Cancel_probe { op; at; id; k }))) s2 in
  (* activeness is the global criterion tau > at: both shards agree *)
  let active = match a2 with None -> a1 | Some a2 -> assert (a1 = a2); a1 in
  if active then begin
    let dshard = Partition.of_ingress t.part r.Request.ingress in
    journal_event t
      (Event.Preempt { time = at; id; bw = a.Allocation.bw; shard = Some dshard });
    post t s1 (Core.Cancel_commit { op; id; k = ignore });
    Option.iter (fun s -> post t s (Core.Cancel_commit { op; id; k = ignore })) s2
  end
  else begin
    post t s1 (Core.Abort { op; k = ignore });
    Option.iter (fun s -> post t s (Core.Abort { op; k = ignore })) s2
  end;
  record t
    {
      ticket;
      at;
      op = H_cancel { id; bw = a.Allocation.bw };
      ok = (if active then Some (Types.Accepted a) else None);
    };
  if active && obs.Obs.enabled then Obs.count obs "preempted_total";
  active

(* --- maintenance --- *)

let settle t =
  let at = Sequencer.now t.seq in
  Array.iteri
    (fun s _ ->
      let op = Atomic.fetch_and_add t.next_op 1 in
      ignore (rpc t s (fun k -> Core.Freeze { op; k }));
      (* a cancel-probe of an id that cannot exist is exactly "advance to
         [at] under the freeze": it drains due releases and mutates
         nothing else *)
      ignore (rpc t s (fun k -> Core.Cancel_probe { op; at; id = min_int; k }));
      post t s (Core.Abort { op; k = ignore }))
    t.cores

let flush t =
  match t.journal with
  | None -> ()
  | Some st ->
      with_jlock t (fun () ->
          Store.flush st;
          t.jdirty <- false)

let snapshot_now t =
  match t.journal with None -> () | Some st -> with_jlock t (fun () -> Store.snapshot_now st)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (match t.boxes with
    | None -> ()
    | Some boxes -> Array.iter Mailbox.close boxes);
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* --- recovery: per-port replay ---

   The journal interleaves shards, so event times are monotone per port
   but not globally.  Replaying with one clock per *port* (draining that
   port's releases up to each event's time before applying it) keeps the
   per-accumulator operation sequence identical to the live run for any
   shard count — including re-partitioning N -> N'. *)

let rec past_prefix = function
  | Event.Capacity _ :: rest -> past_prefix rest
  | rest -> rest

let start_domains t =
  let boxes = Array.map (fun _ -> Mailbox.create ()) t.cores in
  let t = { t with boxes = Some boxes } in
  t.domains <-
    Array.to_list
      (Array.mapi
         (fun s box ->
           Domain.spawn (fun () ->
               let core = t.cores.(s) in
               let rec loop () =
                 match Mailbox.recv box with
                 | Some msg ->
                     Core.handle core msg;
                     loop ()
                 | None -> ()
               in
               loop ()))
         boxes);
  t

type port_state = {
  mutable pclock : float;
  pq : (float * Allocation.t) Queue.t;  (* (tau, alloc) in ticket order *)
}

let of_events ?journal ?(spawn = true) ~shards ~policy ~fabric events =
  let body = past_prefix events in
  if List.exists (function Event.Capacity _ | Event.Shed _ -> true | _ -> false) body then
    Error "store journal carries capacity revisions (fault-injector run); not a daemon journal"
  else begin
    let t = create ?journal ~spawn:false ~shards policy fabric in
    let part = t.part in
    let ing = Array.init (Fabric.ingress_count fabric) (fun _ -> { pclock = neg_infinity; pq = Queue.create () }) in
    let egr = Array.init (Fabric.egress_count fabric) (fun _ -> { pclock = neg_infinity; pq = Queue.create () }) in
    let routes = Hashtbl.create 256 in  (* arrival id -> (ingress, egress) *)
    let live = Hashtbl.create 256 in  (* id -> alloc still booked *)
    let horizon = ref neg_infinity in
    let advance_port ps side_of time =
      if time > ps.pclock then ps.pclock <- time;
      let rec drain () =
        match Queue.peek_opt ps.pq with
        | Some (tau, a) when tau <= ps.pclock ->
            ignore (Queue.pop ps.pq);
            if Hashtbl.mem live a.Allocation.request.Request.id then side_of a;
            drain ()
        | _ -> ()
      in
      drain ()
    in
    let advance_ing i time =
      advance_port ing.(i)
        (fun a ->
          Core.restore_release t.cores.(Partition.of_ingress part i) Core.Ing
            a.Allocation.request.Request.id)
        time
    in
    let advance_egr e time =
      advance_port egr.(e)
        (fun a ->
          Core.restore_release t.cores.(Partition.of_egress part e) Core.Egr
            a.Allocation.request.Request.id)
        time
    in
    let apply ev =
      (match ev with
      | Event.Arrival { id; ingress; egress; _ } ->
          Hashtbl.replace routes id (ingress, egress);
          t.jseq <- t.jseq + 1
      | Event.Accept { time; id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; _ } ->
          let request = Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate in
          let a = Allocation.make ~request ~bw ~sigma in
          advance_ing ingress time;
          advance_egr egress time;
          Core.restore_grab t.cores.(Partition.of_ingress part ingress) Core.Ing a;
          Core.restore_grab t.cores.(Partition.of_egress part egress) Core.Egr a;
          Hashtbl.replace live id a;
          Queue.push (a.Allocation.tau, a) ing.(ingress).pq;
          Queue.push (a.Allocation.tau, a) egr.(egress).pq
      | Event.Reject { time; id; _ } -> (
          match Hashtbl.find_opt routes id with
          | Some (i, e) ->
              advance_ing i time;
              advance_egr e time
          | None -> ())
      | Event.Preempt { time; id; _ } -> (
          match Hashtbl.find_opt live id with
          | Some a ->
              let i = a.Allocation.request.Request.ingress
              and e = a.Allocation.request.Request.egress in
              advance_ing i time;
              advance_egr e time;
              if Hashtbl.mem live id then begin
                (* tau > time: still active — release both sides now *)
                Core.restore_release t.cores.(Partition.of_ingress part i) Core.Ing id;
                Core.restore_release t.cores.(Partition.of_egress part e) Core.Egr id;
                Hashtbl.remove live id
              end
          | None -> ())
      (* Reshape is journaled only by the single-process malleable
         engine; a sharded journal never carries one. *)
      | Event.Reshape _ | Event.Capacity _ | Event.Shed _ | Event.Dispatch _ -> ());
      let time = Event.time ev in
      if time > !horizon then horizon := time
    in
    match List.iter apply body with
    | exception Invalid_argument msg -> Error ("sharded recovery replay failed: " ^ msg)
    | () ->
        (* a drained release must drop the booking on both sides: drain
           bookkeeping happens through [live] membership, so sweep ports
           one final time at their own clocks (queues keep only
           still-pending releases), then hand the leftovers to the
           cores in original ticket order. *)
        Array.iteri (fun i ps -> advance_ing i ps.pclock) ing;
        Array.iteri (fun e ps -> advance_egr e ps.pclock) egr;
        Array.iteri
          (fun i ps ->
            let entries =
              Queue.fold
                (fun acc (_, a) ->
                  if Hashtbl.mem live a.Allocation.request.Request.id then (a, Core.Ing) :: acc
                  else acc)
                [] ps.pq
              |> List.rev
            in
            Core.restore_queue t.cores.(Partition.of_ingress part i) entries)
          ing;
        Array.iteri
          (fun e ps ->
            let entries =
              Queue.fold
                (fun acc (_, a) ->
                  if Hashtbl.mem live a.Allocation.request.Request.id then (a, Core.Egr) :: acc
                  else acc)
                [] ps.pq
              |> List.rev
            in
            Core.restore_queue t.cores.(Partition.of_egress part e) entries)
          egr;
        Array.iter (fun c -> Core.restore_clock c !horizon) t.cores;
        Sequencer.restore_clock t.seq !horizon;
        if spawn then
          (* the inline cores are fully rebuilt; attach mailboxes and
             domains by rebuilding the dispatch layer *)
          Ok (start_domains t)
        else Ok t
  end
