type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
}

let create () =
  { m = Mutex.create (); nonempty = Condition.create (); q = Queue.create (); closed = false }

let send t v =
  Mutex.lock t.m;
  if t.closed then begin
    Mutex.unlock t.m;
    invalid_arg "Mailbox.send: closed"
  end
  else begin
    Queue.push v t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.m
  end

let recv t =
  Mutex.lock t.m;
  let rec wait () =
    match Queue.take_opt t.q with
    | Some v ->
        Mutex.unlock t.m;
        Some v
    | None ->
        if t.closed then begin
          Mutex.unlock t.m;
          None
        end
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
  in
  wait ()

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n
