(** Port-to-shard assignment.

    Ports are the coupling constraints of the paper's constraint set (1)
    — a request consumes capacity on exactly one ingress and one egress
    port — so the fabric is partitioned {e by port}: every port belongs
    to exactly one shard, and an admission touches at most two shards
    (one when both its ports land together).  The map is a plain
    round-robin over port indices: deterministic, fabric-independent,
    and stable across restarts with the same shard count, so a recovered
    journal re-partitions without any stored metadata. *)

type t

val make : shards:int -> t
(** Raises [Invalid_argument] when [shards < 1]. *)

val shards : t -> int

val of_ingress : t -> int -> int
(** Owning shard of ingress port [i] ([i mod shards]). *)

val of_egress : t -> int -> int
(** Owning shard of egress port [e] ([e mod shards]). *)

val involved : t -> ingress:int -> egress:int -> int * int option
(** The owning shards of a route in ascending order: [(s, None)] when
    both ports share a shard, [(lo, Some hi)] otherwise.  Ascending
    order is the deterministic lock order of the two-phase protocol. *)
