(** Sharded multicore admission engine.

    The fabric's ports are partitioned across [shards] cores
    ({!Partition}); each core runs on its own OCaml 5 domain behind a
    mailbox and owns the live counters, release queue, and bookings of
    its ports.  Coordinators (the daemon's worker threads) drive the
    two-phase reserve/commit protocol of {!Core} and may run
    concurrently: operations touching disjoint shards proceed in
    parallel, conflicting ones serialize on the shard freeze.

    Linearizability: every operation draws its [(ticket, at)] from the
    {!Sequencer} while holding the freeze on every shard it touches, so
    replaying the recorded history in ticket order on a single-shard
    [Online] ledger reproduces every decision and every final port
    counter bit-for-bit ([create ~record:true] + {!history}; gated in
    test_shard and the fuzz harness).

    Journaling: with a journal attached, Arrival + decision records are
    appended inside the freeze window under one lock, so the journal's
    per-port record order equals ticket order, and one [Accept] record
    covers both ports of a cross-shard admission atomically — recovery
    is both-booked-or-neither by construction ({!of_events} replays
    per port and re-partitions onto any shard count). *)

module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Fabric = Gridbw_topology.Fabric
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Store = Gridbw_store.Store

type t

type hist_op = H_admit of Request.t | H_cancel of { id : int; bw : float }
type hist_entry = { ticket : int; at : float; op : hist_op; ok : Types.decision option }
(** [ok] is the decision for admits; [Some (Accepted _)]/[None] encode
    cancel success/failure (the cancelled allocation is found by id). *)

val create :
  ?journal:Store.t ->
  ?record:bool ->
  ?spawn:bool ->
  shards:int ->
  Policy.t ->
  Fabric.t ->
  t
(** [spawn:false] runs every shard inline on the caller's thread —
    deterministic, single-threaded semantics for tests and recovery
    (default [true]: one domain per shard). *)

val shards : t -> int
val fabric : t -> Fabric.t
val policy : t -> Policy.t
val now : t -> float
val active_count : t -> int
val probe_count : t -> int

val ingress_used : t -> int -> float
val egress_used : t -> int -> float
(** Read through to the owning shard's live counter (unsynchronized:
    exact at quiescence, a monitoring-grade read while running). *)

val try_admit : ?obs:Obs.ctx -> t -> Request.t -> Types.decision
(** Admit at [max (now, ts r)] — the same arrival semantics as the
    daemon's unsharded path.  Thread-safe. *)

val cancel : ?obs:Obs.ctx -> t -> Allocation.t -> bool
(** Preempt a booked allocation; [false] when the transfer already
    finished ([tau <= now] at the sequenced instant).  Thread-safe. *)

val settle : t -> unit
(** Advance every shard to the sequencer's clock (each under its own
    freeze), draining releases that fell due on shards no recent
    operation touched.  Makes {!ingress_used}/{!egress_used} and
    {!active_count} reflect global time — the daemon's stats path and
    the linearizability check call this at read points. *)

val dirty : t -> bool
val flush : t -> unit
val snapshot_now : t -> unit
val stop : t -> unit
(** Drain and join the shard domains (idempotent).  The journal is not
    closed — the owner does that. *)

val history : t -> hist_entry list
(** Recorded operations in ticket order ([create ~record:true] only). *)

(** {2 Recovery} *)

val of_events :
  ?journal:Store.t ->
  ?spawn:bool ->
  shards:int ->
  policy:Policy.t ->
  fabric:Fabric.t ->
  Event.t list ->
  (t, string) result
(** Rebuild from a recovered journal's event list (per-port replay:
    exact for any shard count, including re-partitioning a journal
    written under a different [shards]).  Fails on fault-injector
    journals (capacity revisions / sheds). *)
