type t = { m : Mutex.t; mutable clock : float; mutable ticket : int }

let create () = { m = Mutex.create (); clock = neg_infinity; ticket = 0 }

let next t ~ts =
  Mutex.lock t.m;
  if ts > t.clock then t.clock <- ts;
  let n = t.ticket in
  t.ticket <- n + 1;
  let at = t.clock in
  Mutex.unlock t.m;
  (n, at)

let now t =
  Mutex.lock t.m;
  let c = t.clock in
  Mutex.unlock t.m;
  c

let restore_clock t c =
  Mutex.lock t.m;
  if c > t.clock then t.clock <- c;
  Mutex.unlock t.m
