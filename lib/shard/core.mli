(** The per-shard state machine of the two-phase reserve/commit protocol.

    A shard owns a subset of the fabric's ports ({!Partition}) and holds
    the live usage counters, the release queue, and the active-booking
    table for exactly those ports.  It processes one message at a time
    (its owning domain drains a {!Mailbox}), so all state here is
    single-threaded by construction.

    The protocol ("reserve" is a freeze, not a tentative mutation):

    - [Freeze op] — the shard parks every other operation until [op]
      resolves.  This is the reserve phase: holding the freeze on every
      involved shard gives the coordinator an atomic window in which to
      read usage, decide, journal, and commit.  Nothing is mutated at
      reserve time, so an abort releases nothing and committed float
      accumulators are only ever touched by committed decisions — the
      key to bit-identical replays.
    - [Probe op] — advance the shard clock to the operation's sequenced
      time [at] (draining due releases) and report, for each owned side
      of the route, whether the request fits and the port's headroom.
    - [Commit op] / [Abort op] — apply the booking to the owned sides
      (or nothing), unfreeze, and process parked messages.  Duplicate
      deliveries of a resolved operation are acknowledged without
      re-applying when the core tracks resolutions
      ([~track_duplicates:true], the interleaving explorer's mode).
    - [Cancel_probe op] / [Cancel_commit op] — the same shape for
      cancellation: activeness is the global criterion [tau > at], which
      every involved shard evaluates identically.

    Deadlock freedom: coordinators freeze shards in ascending shard id,
    so the wait-for graph follows a fixed resource order and has no
    cycles. *)

module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Fabric = Gridbw_topology.Fabric

(** Which end of a route a queue entry releases. *)
type rel_side = Ing | Egr

type reply =
  | Frozen of { op : int }
  | Probed of {
      op : int;
      ing : (bool * float) option;  (** owned ingress side: (fits, headroom) *)
      egr : (bool * float) option;  (** owned egress side: (fits, headroom) *)
    }
  | Cancel_probed of { op : int; active : bool }
  | Done of { op : int }

type msg =
  | Freeze of { op : int; k : reply -> unit }
  | Probe of { op : int; at : float; r : Request.t; bw : float option; k : reply -> unit }
  | Commit of { op : int; a : Allocation.t; k : reply -> unit }
  | Abort of { op : int; k : reply -> unit }
  | Cancel_probe of { op : int; at : float; id : int; k : reply -> unit }
  | Cancel_commit of { op : int; id : int; k : reply -> unit }

type t

val create : ?track_duplicates:bool -> shard:int -> partition:Partition.t -> Fabric.t -> t
val shard : t -> int
val handle : t -> msg -> unit
(** Process one message.  Raises [Invalid_argument] on protocol
    violations (probe or commit without holding the freeze) unless the
    operation is a tracked duplicate. *)

(** {2 Introspection (tests, recovery, stats)} *)

val clock : t -> float
val frozen : t -> int option
val parked_count : t -> int
val booked_ids : t -> int list
val ingress_used : t -> int -> float
val egress_used : t -> int -> float
val probe_count : t -> int
val active_ingress_count : t -> int
(** Bookings whose ingress side this shard owns — each live allocation
    is counted by exactly one shard. *)

(** {2 Recovery rebuild}

    Direct state surgery used by [Engine.of_events]' per-port replay;
    never called on a running shard. *)

val restore_grab : t -> rel_side -> Allocation.t -> unit
val restore_release : t -> rel_side -> int -> unit
val restore_clock : t -> float -> unit
val restore_queue : t -> (Allocation.t * rel_side) list -> unit
(** Entries are pushed in list order (= original ticket order), keyed by
    their [tau], so FIFO tie-breaking matches the live run. *)
