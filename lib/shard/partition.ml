type t = { shards : int }

let make ~shards =
  if shards < 1 then invalid_arg "Partition.make: shards must be >= 1";
  { shards }

let shards t = t.shards
let of_ingress t i = i mod t.shards
let of_egress t e = e mod t.shards

let involved t ~ingress ~egress =
  let si = of_ingress t ingress and se = of_egress t egress in
  if si = se then (si, None)
  else if si < se then (si, Some se)
  else (se, Some si)
