(** Fault model: deterministic schedules of port degradations, end-host
    aborts and operator preemptions.

    The paper's system model (section 2) assumes access-point capacities
    never change; this module supplies the schedules under which the
    recovery machinery ({!Injector}) is exercised.  Scripts are plain
    event lists — hand-authored for tests, or drawn from a PRNG-driven
    renewal model ({!generate}) so every run is reproducible from a
    seed. *)

type side = Ingress | Egress

type event =
  | Degrade of { side : side; port : int; factor : float; from_ : float; until : float }
      (** port capacity drops to [factor × nominal] on [\[from_, until)];
          [factor = 0] is a full outage (the injector keeps a tiny
          residual capacity so fabric invariants hold) *)
  | Abort of { request_id : int; at : float }
      (** the request's end host dies at [at]: its transfer is revoked and
          never resubmitted *)
  | Preempt of { request_id : int; at : float }
      (** operator-driven revocation at [at]; the transfer goes through
          normal recovery (residual re-admission) *)

val time_of : event -> float
val sort : event list -> event list
val side_name : side -> string
val pp_event : Format.formatter -> event -> unit

val validate : Gridbw_topology.Fabric.t -> event list -> unit
(** Check ports, factors, windows and times; degradation windows of one
    port must not overlap.  Raises [Invalid_argument] otherwise. *)

type spec = {
  mtbf : float;  (** mean up-time between failures per port, s *)
  mean_outage : float;  (** mean degradation duration, s *)
  depth_lo : float;  (** retained-capacity fraction, lower bound *)
  depth_hi : float;  (** retained-capacity fraction, upper bound *)
}

val default_spec : spec
(** MTBF 400 s, outages of mean 60 s retaining 20–60 % of capacity. *)

val generate :
  Gridbw_prng.Rng.t -> Gridbw_topology.Fabric.t -> horizon:float -> spec -> event list
(** Per-port renewal process on [\[0, horizon)]: exponential up-times and
    outage durations, uniform depths.  Sorted by time. *)

val generate_aborts :
  Gridbw_prng.Rng.t -> fraction:float -> Gridbw_request.Request.t list -> event list
(** Each request's host dies with probability [fraction], at a uniform
    time inside its transmission window. *)

val horizon_of_requests : Gridbw_request.Request.t list -> float
(** Latest deadline of the workload — the natural fault horizon. *)
