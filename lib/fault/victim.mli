(** Victim selection: which transfers to preempt when a port shrinks
    below its committed bandwidth.

    Given the over-committed port's active allocations (paired with their
    residual volume — the MB still to transfer at preemption time) and the
    excess bandwidth [need] to shed, a policy returns the allocations to
    revoke.  The trade-off: [Smallest_residual] sacrifices the least
    outstanding work per preemption, [Latest_deadline] picks the victims
    with the most slack to recover, [Proportional_squeeze] renegotiates
    every transfer on the port so the shrunk capacity is re-shared. *)

type t = Smallest_residual | Latest_deadline | Proportional_squeeze

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit

val select :
  t -> need:float -> (Gridbw_alloc.Allocation.t * float) list -> Gridbw_alloc.Allocation.t list
(** Victims in preemption order.  For the two ranking policies the prefix
    stops as soon as the cumulative revoked bandwidth covers [need] (the
    whole candidate list if it never does); [Proportional_squeeze] always
    returns every candidate.  Ties break on request id, so selection is
    deterministic regardless of input order. *)
