module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation

type t = Smallest_residual | Latest_deadline | Proportional_squeeze

let all = [ Smallest_residual; Latest_deadline; Proportional_squeeze ]

let name = function
  | Smallest_residual -> "smallest-residual"
  | Latest_deadline -> "latest-deadline"
  | Proportional_squeeze -> "proportional-squeeze"

let pp ppf t = Format.pp_print_string ppf (name t)

let id_of (a : Allocation.t) = a.Allocation.request.Request.id
let deadline_of (a : Allocation.t) = a.Allocation.request.Request.tf

let order t candidates =
  match t with
  | Proportional_squeeze -> List.map fst candidates
  | Smallest_residual ->
      List.sort
        (fun (a, ra) (b, rb) ->
          match Float.compare ra rb with 0 -> Int.compare (id_of a) (id_of b) | c -> c)
        candidates
      |> List.map fst
  | Latest_deadline ->
      List.sort
        (fun (a, _) (b, _) ->
          match Float.compare (deadline_of b) (deadline_of a) with
          | 0 -> Int.compare (id_of a) (id_of b)
          | c -> c)
        candidates
      |> List.map fst

let select t ~need candidates =
  match t with
  | Proportional_squeeze ->
      (* Squeeze by full re-pack: every transfer on the degraded port is
         renegotiated, so the residuals are re-admitted at whatever rates
         the shrunk capacity supports. *)
      order t candidates
  | Smallest_residual | Latest_deadline ->
      let rec take shed acc = function
        | [] -> List.rev acc
        | _ when shed >= need -. 1e-12 -> List.rev acc
        | a :: rest -> take (shed +. a.Allocation.bw) (a :: acc) rest
      in
      take 0.0 [] (order t candidates)
