module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Port = Gridbw_alloc.Port
module Engine = Gridbw_sim.Engine
module Online = Gridbw_core.Online
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types
module Flexible = Gridbw_core.Flexible
module Plane = Gridbw_control.Plane
module Resilience = Gridbw_metrics.Resilience
module Obs = Gridbw_obs.Obs
module Event = Gridbw_obs.Event
module Emit = Gridbw_core.Emit

type admission = Greedy | Window of float
type recovery = No_recovery | Resubmit

type config = {
  policy : Policy.t;
  admission : admission;
  victim : Victim.t;
  recovery : recovery;
  control : Plane.config;
  check_invariants : bool;
}

let default_config ?(policy = Policy.Min_rate) ?(admission = Greedy) () =
  {
    policy;
    admission;
    victim = Victim.Smallest_residual;
    recovery = Resubmit;
    control = Plane.default_config policy;
    check_invariants = false;
  }

let admission_name = function
  | Greedy -> "greedy"
  | Window step -> Printf.sprintf "window(%g)" step

type service = { s_ingress : int; s_egress : int; s_bw : float; s_from : float; s_until : float }

type report = {
  result : Types.result;
  outcomes : Resilience.outcome list;
  stats : Resilience.t;
  services : service list;
  span : float;
}

(* A fault event names a port by side + index; the allocation layer's
   port-keyed API takes the sum type. *)
let port_of side port =
  match (side : Fault.side) with
  | Fault.Ingress -> Port.Ingress port
  | Fault.Egress -> Port.Egress port

(* A port at nominal capacity never hits zero (Fabric requires positive
   capacities), so a full outage retains this sliver instead. *)
let outage_floor = 1e-6
let tol = 1e-9

(* Per-request transfer history, mutated as the simulation unfolds. *)
type tlog = {
  req : Request.t;
  mutable admitted : bool;
  mutable cur : Allocation.t option;  (* the live allocation, if any *)
  mutable delivered : float;  (* MB transferred so far across allocations *)
  mutable finished_at : float option;
  mutable preemptions : int;
  mutable aborted : bool;
  mutable violation : float;
  mutable down_since : float option;  (* preempted, awaiting renegotiation *)
  mutable services : service list;
}

let new_log req =
  {
    req;
    admitted = false;
    cur = None;
    delivered = 0.0;
    finished_at = None;
    preemptions = 0;
    aborted = false;
    violation = 0.0;
    down_since = None;
    services = [];
  }

let outcome_of lg =
  {
    Resilience.request = lg.req;
    admitted = lg.admitted;
    aborted = lg.aborted;
    delivered = lg.delivered;
    finished_at = lg.finished_at;
    preemptions = lg.preemptions;
    violation_time = lg.violation;
  }

let span_of requests =
  match requests with
  | [] -> 0.0
  | (first : Request.t) :: _ ->
      let t0, t1 =
        List.fold_left
          (fun (t0, t1) (r : Request.t) -> (Float.min t0 r.ts, Float.max t1 r.tf))
          (first.ts, first.tf) requests
      in
      t1 -. t0

(* Mutable capacity state: nominal capacities plus the currently applied
   degradation, rebuilt into a Fabric.t on every revision. *)
type caps = { base : Fabric.t; cur_in : float array; cur_out : float array }

let caps_of fabric =
  {
    base = fabric;
    cur_in = Array.init (Fabric.ingress_count fabric) (Fabric.ingress_capacity fabric);
    cur_out = Array.init (Fabric.egress_count fabric) (Fabric.egress_capacity fabric);
  }

let apply_degrade caps side port ~factor =
  let nominal, arr =
    match side with
    | Fault.Ingress -> (Fabric.ingress_capacity caps.base port, caps.cur_in)
    | Fault.Egress -> (Fabric.egress_capacity caps.base port, caps.cur_out)
  in
  arr.(port) <- Float.max (factor *. nominal) outage_floor;
  Fabric.make ~ingress:caps.cur_in ~egress:caps.cur_out

let apply_restore caps side port =
  let nominal =
    match side with
    | Fault.Ingress -> Fabric.ingress_capacity caps.base port
    | Fault.Egress -> Fabric.egress_capacity caps.base port
  in
  (match side with
  | Fault.Ingress -> caps.cur_in.(port) <- nominal
  | Fault.Egress -> caps.cur_out.(port) <- nominal);
  Fabric.make ~ingress:caps.cur_in ~egress:caps.cur_out

let current_capacity caps side port =
  match side with Fault.Ingress -> caps.cur_in.(port) | Fault.Egress -> caps.cur_out.(port)

let event_side = function Fault.Ingress -> Event.Ingress | Fault.Egress -> Event.Egress

(* Capacity-revision trace record, emitted whenever a degrade or restore
   rewrites a port's capacity. *)
let emit_capacity obs ~time side port caps =
  if obs.Obs.enabled then begin
    Obs.count obs "capacity_revisions_total";
    Obs.event obs (fun () ->
        Event.Capacity
          { time; side = event_side side; port; capacity = current_capacity caps side port })
  end

let emit_shed obs ~time side port ~excess ~victims =
  if obs.Obs.enabled then begin
    Obs.count_n obs "shed_victims_total" victims;
    Obs.event obs (fun () ->
        Event.Shed { time; side = event_side side; port; excess; victims })
  end

let within_current used cap = used <= (cap *. (1. +. tol)) +. tol

let on_port side port (a : Allocation.t) =
  match side with
  | Fault.Ingress -> a.Allocation.request.Request.ingress = port
  | Fault.Egress -> a.Allocation.request.Request.egress = port

(* Remaining MB of the request if its live allocation were cut at [now]. *)
let residual_if_cut lg (a : Allocation.t) ~now =
  let served = Float.max 0. (Float.min now a.Allocation.tau -. a.Allocation.sigma) in
  Float.max 0. (lg.req.Request.volume -. lg.delivered -. (a.Allocation.bw *. served))

let validate_inputs fabric cfg events requests =
  Policy.validate cfg.policy;
  (match cfg.admission with
  | Greedy -> ()
  | Window step ->
      if step <= 0. || not (Float.is_finite step) then
        invalid_arg "Injector.run: window step must be positive and finite");
  if Plane.renegotiation_delay cfg.control < 0. then
    invalid_arg "Injector.run: negative renegotiation delay";
  Fault.validate fabric events;
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Injector.run: request %d routed on unknown port" r.Request.id))
    requests

(* ---------- GREEDY admission under faults ---------- *)

(* Identical to Flexible.greedy when the script is empty: arrivals are
   processed through the same Online controller in the same order, so the
   decision stream — and therefore every summary metric — is bit-identical.
   Faults interleave as engine events; at equal timestamps arrivals decide
   before faults strike (both before any renegotiation scheduled then). *)
let run_greedy ?(obs = Obs.disabled) fabric cfg events requests =
  let ictx = Gridbw_core.Runtime.make ~obs () in
  let ctl = Online.create fabric in
  let caps = caps_of fabric in
  let engine = Engine.create ~obs () in
  let reneg = Plane.renegotiation_delay cfg.control in
  let logs = Hashtbl.create (List.length requests) in
  List.iter (fun (r : Request.t) -> Hashtbl.replace logs r.id (new_log r)) requests;
  let log_of_id id = Hashtbl.find_opt logs id in
  let log_of_alloc (a : Allocation.t) = Hashtbl.find logs a.Allocation.request.Request.id in
  let decisions = ref [] in
  let check_invariants () =
    if cfg.check_invariants then begin
      Array.iteri
        (fun i cap ->
          if not (within_current (Online.used ctl (Port.Ingress i)) cap) then
            failwith
              (Printf.sprintf "Injector: ingress %d over current capacity (%g > %g)" i
                 (Online.used ctl (Port.Ingress i)) cap))
        caps.cur_in;
      Array.iteri
        (fun e cap ->
          if not (within_current (Online.used ctl (Port.Egress e)) cap) then
            failwith
              (Printf.sprintf "Injector: egress %d over current capacity (%g > %g)" e
                 (Online.used ctl (Port.Egress e)) cap))
        caps.cur_out
    end
  in
  let sched time handler =
    Engine.schedule engine ~time (fun engine ->
        handler engine;
        check_invariants ())
  in
  let note_admit lg (a : Allocation.t) =
    lg.admitted <- true;
    lg.cur <- Some a;
    sched a.Allocation.tau (fun _ ->
        match lg.cur with
        | Some b when b == a ->
            lg.cur <- None;
            lg.delivered <- lg.delivered +. (a.Allocation.bw *. (a.Allocation.tau -. a.Allocation.sigma));
            lg.finished_at <- Some a.Allocation.tau;
            lg.services <-
              {
                s_ingress = a.Allocation.request.Request.ingress;
                s_egress = a.Allocation.request.Request.egress;
                s_bw = a.Allocation.bw;
                s_from = a.Allocation.sigma;
                s_until = a.Allocation.tau;
              }
              :: lg.services
        | _ -> ())
  in
  let give_up lg ~down =
    (* The guarantee is broken from the preemption to the deadline. *)
    lg.violation <- lg.violation +. Float.max 0. (lg.req.Request.tf -. down);
    lg.down_since <- None
  in
  (* Residuals whose renegotiation was rejected (port still degraded);
     they re-signal when a degraded port is restored. *)
  let waiting = ref [] in
  let attempt_readmit lg engine =
    if (not lg.aborted) && lg.down_since <> None then begin
      let now = Engine.now engine in
      let down = Option.get lg.down_since in
      let r = lg.req in
      let residual = r.Request.volume -. lg.delivered in
      if
        now >= r.Request.tf
        || residual /. (r.Request.tf -. now) > r.Request.max_rate *. (1. +. tol)
      then give_up lg ~down
      else
        let r' =
          Request.make ~id:r.Request.id ~ingress:r.Request.ingress ~egress:r.Request.egress
            ~volume:residual ~ts:now ~tf:r.Request.tf ~max_rate:r.Request.max_rate
        in
        match Online.try_admit ~ctx:ictx ctl cfg.policy r' ~at:now with
        | Types.Accepted a' ->
            lg.violation <- lg.violation +. Float.max 0. (a'.Allocation.sigma -. down);
            lg.down_since <- None;
            note_admit lg a'
        | Types.Rejected _ -> waiting := lg :: !waiting
    end
  in
  let retry_waiting engine =
    let ws =
      List.sort (fun a b -> Int.compare a.req.Request.id b.req.Request.id) !waiting
    in
    waiting := [];
    List.iter (fun lg -> sched (Engine.now engine +. reneg) (attempt_readmit lg)) ws
  in
  let rec preempt_now engine lg (a : Allocation.t) ~recover =
    let now = Engine.now engine in
    ignore (Online.preempt ~ctx:ictx ctl a);
    lg.cur <- None;
    lg.preemptions <- lg.preemptions + 1;
    let served = Float.max 0. (now -. a.Allocation.sigma) in
    if served > 0. then begin
      lg.delivered <- lg.delivered +. (a.Allocation.bw *. served);
      lg.services <-
        {
          s_ingress = a.Allocation.request.Request.ingress;
          s_egress = a.Allocation.request.Request.egress;
          s_bw = a.Allocation.bw;
          s_from = a.Allocation.sigma;
          s_until = now;
        }
        :: lg.services
    end;
    let r = lg.req in
    let residual = r.Request.volume -. lg.delivered in
    if residual <= tol *. r.Request.volume then lg.finished_at <- Some now
    else if not recover then ()
    else begin
      lg.down_since <- Some now;
      match cfg.recovery with
      | No_recovery -> give_up lg ~down:now
      | Resubmit -> sched (now +. reneg) (attempt_readmit lg)
    end
  and shed engine side port =
    Obs.span obs "shed" @@ fun () ->
    let now = Engine.now engine in
    Online.advance_to ctl now;
    let cap = current_capacity caps side port in
    let used = Online.used ctl (port_of side port) in
    let excess = used -. cap in
    if excess > tol *. Float.max 1.0 cap then begin
      let candidates =
        Online.active_allocations ctl
        |> List.filter (on_port side port)
        |> List.map (fun a -> (a, residual_if_cut (log_of_alloc a) a ~now))
      in
      let victims = Victim.select cfg.victim ~need:excess candidates in
      List.iter (fun a -> preempt_now engine (log_of_alloc a) a ~recover:true) victims;
      emit_shed obs ~time:now side port ~excess ~victims:(List.length victims)
    end
  in
  (* Arrivals first (same order as Flexible.greedy), then fault events, so
     same-instant ties resolve arrivals-before-faults deterministically. *)
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  List.iter
    (fun (r : Request.t) ->
      sched r.ts (fun engine ->
          if Obs.tracing obs then Emit.emit_arrival obs seqs r;
          let d = Online.try_admit ~ctx:ictx ctl cfg.policy r ~at:(Engine.now engine) in
          decisions := (r, d) :: !decisions;
          match d with
          | Types.Accepted a -> note_admit (Hashtbl.find logs r.id) a
          | Types.Rejected _ -> ()))
    (Flexible.arrival_order requests);
  List.iter
    (fun event ->
      match event with
      | Fault.Degrade { side; port; factor; from_; until } ->
          sched from_ (fun engine ->
              Online.set_fabric ctl (apply_degrade caps side port ~factor);
              emit_capacity obs ~time:(Engine.now engine) side port caps;
              shed engine side port);
          sched until (fun engine ->
              Online.set_fabric ctl (apply_restore caps side port);
              emit_capacity obs ~time:(Engine.now engine) side port caps;
              retry_waiting engine)
      | Fault.Abort { request_id; at } ->
          sched at (fun engine ->
              match log_of_id request_id with
              | None -> ()
              | Some lg ->
                  (match lg.cur with
                  | Some a when lg.finished_at = None ->
                      preempt_now engine lg a ~recover:false;
                      lg.aborted <- true
                  | _ ->
                      if lg.admitted && lg.finished_at = None then begin
                        lg.aborted <- true;
                        lg.down_since <- None
                      end))
      | Fault.Preempt { request_id; at } ->
          sched at (fun engine ->
              match log_of_id request_id with
              | None -> ()
              | Some lg -> (
                  match lg.cur with
                  | Some a when lg.finished_at = None -> preempt_now engine lg a ~recover:true
                  | _ -> ())))
    events;
  Engine.run engine;
  (!decisions, logs)

(* ---------- WINDOW admission under faults ---------- *)

(* Identical to Flexible.window when the script is empty: the same batches
   are packed by Flexible.pack_batch against the same ledger in the same
   order (batch k at its boundary (k+1)·step).  Faults revise the ledger's
   fabric; shedding releases whole reserved intervals and residuals are
   re-packed at the first boundary after the renegotiation delay. *)
let run_window ?(obs = Obs.disabled) fabric cfg ~step events requests =
  let ledger = Ledger.create fabric in
  let caps = caps_of fabric in
  let engine = Engine.create ~obs () in
  let reneg = Plane.renegotiation_delay cfg.control in
  let logs = Hashtbl.create (List.length requests) in
  List.iter (fun (r : Request.t) -> Hashtbl.replace logs r.id (new_log r)) requests;
  let log_of_id id = Hashtbl.find_opt logs id in
  let log_of_alloc (a : Allocation.t) = Hashtbl.find logs a.Allocation.request.Request.id in
  let decisions = ref [] in
  let registry = ref [] in
  let unregister a = registry := List.filter (fun b -> b != a) !registry in
  let check_invariants () =
    if cfg.check_invariants then begin
      let now = Engine.now engine in
      Array.iteri
        (fun i cap ->
          if not (within_current (Ledger.usage_at ledger (Port.Ingress i) now) cap) then
            failwith (Printf.sprintf "Injector: ingress %d over current capacity at %g" i now))
        caps.cur_in;
      Array.iteri
        (fun e cap ->
          if not (within_current (Ledger.usage_at ledger (Port.Egress e) now) cap) then
            failwith (Printf.sprintf "Injector: egress %d over current capacity at %g" e now))
        caps.cur_out
    end
  in
  let sched time handler =
    Engine.schedule engine ~time (fun engine ->
        handler engine;
        check_invariants ())
  in
  let finish lg (a : Allocation.t) =
    lg.cur <- None;
    unregister a;
    lg.delivered <- lg.delivered +. (a.Allocation.bw *. (a.Allocation.tau -. a.Allocation.sigma));
    lg.finished_at <- Some a.Allocation.tau;
    lg.services <-
      {
        s_ingress = a.Allocation.request.Request.ingress;
        s_egress = a.Allocation.request.Request.egress;
        s_bw = a.Allocation.bw;
        s_from = a.Allocation.sigma;
        s_until = a.Allocation.tau;
      }
      :: lg.services
  in
  let register engine lg (a : Allocation.t) =
    lg.admitted <- true;
    if a.Allocation.tau <= Engine.now engine then
      (* Whole transfer fits inside the already-elapsed part of the batch
         interval (retroactive booking, as in Flexible.window). *)
      finish lg a
    else begin
      lg.cur <- Some a;
      registry := a :: !registry;
      sched a.Allocation.tau (fun _ ->
          match lg.cur with Some b when b == a -> finish lg a | _ -> ())
    end
  in
  let give_up lg ~down =
    lg.violation <- lg.violation +. Float.max 0. (lg.req.Request.tf -. down);
    lg.down_since <- None
  in
  (* Residuals awaiting the next batch boundary, keyed by boundary time. *)
  let pending : (float, Request.t list ref) Hashtbl.t = Hashtbl.create 16 in
  (* Residuals rejected at a boundary (port still degraded); they re-signal
     when a degraded port is restored. *)
  let waiting = ref [] in
  let rec flush_boundary engine b =
    match Hashtbl.find_opt pending b with
    | None -> ()
    | Some batch_ref ->
        Hashtbl.remove pending b;
        let batch =
          List.filter
            (fun (r : Request.t) ->
              match log_of_id r.id with
              | Some lg -> (not lg.aborted) && lg.down_since <> None
              | None -> false)
            (List.rev !batch_ref)
        in
        Flexible.pack_batch ~obs ~now:b cfg.policy ledger
          ~decide:(fun r d ->
            let lg = Hashtbl.find logs r.Request.id in
            match d with
            | Types.Accepted a ->
                let down = Option.get lg.down_since in
                lg.violation <- lg.violation +. Float.max 0. (a.Allocation.sigma -. down);
                lg.down_since <- None;
                register engine lg a
            | Types.Rejected _ -> waiting := lg :: !waiting)
          batch
  and queue_residual lg ~now =
    let r = lg.req in
    let residual = r.Request.volume -. lg.delivered in
    let t_re = now +. reneg in
    if t_re >= r.Request.tf || residual /. (r.Request.tf -. t_re) > r.Request.max_rate *. (1. +. tol)
    then give_up lg ~down:now
    else begin
      let r' =
        Request.make ~id:r.Request.id ~ingress:r.Request.ingress ~egress:r.Request.egress
          ~volume:residual ~ts:t_re ~tf:r.Request.tf ~max_rate:r.Request.max_rate
      in
      let boundary = (Float.floor (t_re /. step) +. 1.) *. step in
      match Hashtbl.find_opt pending boundary with
      | Some batch_ref -> batch_ref := r' :: !batch_ref
      | None ->
          Hashtbl.replace pending boundary (ref [ r' ]);
          sched boundary (fun engine -> flush_boundary engine boundary)
    end
  and preempt_now engine lg (a : Allocation.t) ~recover =
    let now = Engine.now engine in
    Ledger.release ledger a;
    unregister a;
    lg.cur <- None;
    lg.preemptions <- lg.preemptions + 1;
    (if obs.Obs.enabled then begin
       Obs.count obs "preempted_total";
       Obs.event obs (fun () ->
           Event.Preempt
             { time = now; id = a.Allocation.request.Request.id; bw = a.Allocation.bw; shard = None })
     end);
    let served = Float.max 0. (Float.min now a.Allocation.tau -. a.Allocation.sigma) in
    if served > 0. then begin
      lg.delivered <- lg.delivered +. (a.Allocation.bw *. served);
      lg.services <-
        {
          s_ingress = a.Allocation.request.Request.ingress;
          s_egress = a.Allocation.request.Request.egress;
          s_bw = a.Allocation.bw;
          s_from = a.Allocation.sigma;
          s_until = now;
        }
        :: lg.services
    end;
    let residual = lg.req.Request.volume -. lg.delivered in
    if residual <= tol *. lg.req.Request.volume then lg.finished_at <- Some now
    else if not recover then ()
    else begin
      lg.down_since <- Some now;
      match cfg.recovery with
      | No_recovery -> give_up lg ~down:now
      | Resubmit -> queue_residual lg ~now
    end
  in
  (* Usage peak of the degraded port over the outage window; the argmax
     instant tells us which allocations to rank as victims.  One O(log n)
     ledger query — this used to enumerate every breakpoint of the port
     and recompute the usage at each, O(n^2) per shed round. *)
  let peak_over side port ~from_ ~until =
    Ledger.argmax_over ledger (port_of side port) ~from_ ~until
  in
  let shed engine side port ~until =
    Obs.span obs "shed" @@ fun () ->
    let now = Engine.now engine in
    let cap = current_capacity caps side port in
    let shed_victims = ref 0 in
    let excess0 = ref 0.0 in
    let rec loop () =
      let t_star, peak = peak_over side port ~from_:now ~until in
      if peak > cap *. (1. +. tol) then begin
        if !shed_victims = 0 then excess0 := peak -. cap;
        let candidates =
          !registry
          |> List.filter (fun (a : Allocation.t) ->
                 on_port side port a
                 && a.Allocation.sigma <= t_star
                 && t_star < a.Allocation.tau
                 && a.Allocation.tau > now)
          |> List.map (fun a -> (a, residual_if_cut (log_of_alloc a) a ~now))
        in
        match Victim.select cfg.victim ~need:(peak -. cap) candidates with
        | [] -> ()
        | victims ->
            List.iter (fun a -> preempt_now engine (log_of_alloc a) a ~recover:true) victims;
            shed_victims := !shed_victims + List.length victims;
            loop ()
      end
    in
    loop ();
    if !shed_victims > 0 then
      emit_shed obs ~time:now side port ~excess:!excess0 ~victims:!shed_victims
  in
  (* Arrival batches first (same order as Flexible.window), then faults. *)
  let seqs = if Obs.tracing obs then Emit.seq_table requests else Hashtbl.create 1 in
  List.iter
    (fun (k, batch) ->
      let boundary = float_of_int (k + 1) *. step in
      sched boundary (fun engine ->
          Emit.emit_arrivals obs seqs batch;
          Flexible.pack_batch ~obs ~now:boundary cfg.policy ledger
            ~decide:(fun r d ->
              decisions := (r, d) :: !decisions;
              match d with
              | Types.Accepted a -> register engine (Hashtbl.find logs r.Request.id) a
              | Types.Rejected _ -> ())
            batch))
    (Flexible.batches ~step requests);
  List.iter
    (fun event ->
      match event with
      | Fault.Degrade { side; port; factor; from_; until } ->
          sched from_ (fun engine ->
              Ledger.set_fabric ledger (apply_degrade caps side port ~factor);
              emit_capacity obs ~time:(Engine.now engine) side port caps;
              shed engine side port ~until);
          sched until (fun engine ->
              Ledger.set_fabric ledger (apply_restore caps side port);
              emit_capacity obs ~time:(Engine.now engine) side port caps;
              let ws =
                List.sort (fun a b -> Int.compare a.req.Request.id b.req.Request.id) !waiting
              in
              waiting := [];
              List.iter (fun lg -> queue_residual lg ~now:(Engine.now engine)) ws)
      | Fault.Abort { request_id; at } ->
          sched at (fun engine ->
              match log_of_id request_id with
              | None -> ()
              | Some lg ->
                  (match lg.cur with
                  | Some a when lg.finished_at = None ->
                      preempt_now engine lg a ~recover:false;
                      lg.aborted <- true
                  | _ ->
                      if lg.admitted && lg.finished_at = None then begin
                        lg.aborted <- true;
                        lg.down_since <- None
                      end))
      | Fault.Preempt { request_id; at } ->
          sched at (fun engine ->
              match log_of_id request_id with
              | None -> ()
              | Some lg -> (
                  match lg.cur with
                  | Some a when lg.finished_at = None -> preempt_now engine lg a ~recover:true
                  | _ -> ())))
    events;
  Engine.run engine;
  (!decisions, logs)

let run ?(ctx = Gridbw_core.Runtime.default) fabric cfg events requests =
  let module Runtime = Gridbw_core.Runtime in
  let obs = Runtime.observed ctx in
  validate_inputs fabric cfg events requests;
  let decisions, logs =
    match cfg.admission with
    | Greedy -> run_greedy ~obs fabric cfg events requests
    | Window step -> run_window ~obs fabric cfg ~step events requests
  in
  let result = Flexible.collect requests (List.rev decisions) in
  (* Residuals still waiting for a renegotiation that never came: the
     guarantee stayed broken from the preemption to the deadline. *)
  Hashtbl.iter
    (fun _ lg ->
      match lg.down_since with
      | Some down when (not lg.aborted) && lg.finished_at = None ->
          lg.violation <- lg.violation +. Float.max 0. (lg.req.Request.tf -. down);
          lg.down_since <- None
      | _ -> ())
    logs;
  let outcomes =
    List.map (fun (r : Request.t) -> outcome_of (Hashtbl.find logs r.id)) requests
  in
  let services =
    List.concat_map (fun (r : Request.t) -> List.rev (Hashtbl.find logs r.id).services) requests
  in
  let span = span_of requests in
  { result; outcomes; stats = Resilience.compute ~span outcomes; services; span }

(* A fault run viewed through the first-class scheduler interface: the
   admission decision stream of [run] under this config and script.  The
   resilience report is recomputed by callers that need it; schedulers
   only expose the accept/reject outcome. *)
let scheduler cfg events : Gridbw_core.Scheduler.t =
  let name =
    Printf.sprintf "faulty-%s[%d events]" (admission_name cfg.admission) (List.length events)
  in
  Gridbw_core.Scheduler.make ~name (fun ?ctx spec requests ->
      (run ?ctx spec.Gridbw_workload.Spec.fabric cfg events requests).result)
