(* Crash-site carving over a durable store directory.  A crash can cut
   the byte stream anywhere; the carving itself is pure byte surgery.
   Finding record boundaries needs just enough framing knowledge to walk
   records — a 0xB1 first byte opens a binary frame (u32 LE payload
   length at offset 2, 10 bytes of framing overhead), anything else is a
   newline-terminated text line.  That parsing is re-derived here at the
   byte level (rather than calling into Gridbw_store) to keep the test
   harness independent of the code under test. *)

let is_segment name =
  String.length name = 18
  && String.sub name 0 4 = "wal-"
  && Filename.check_suffix name ".log"

(* Segment names are zero-padded by their starting record index, so
   lexicographic order is segment order. *)
let segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter is_segment
  |> List.sort compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let copy_store ~src ~dst =
  if not (Sys.file_exists dst) then Sys.mkdir dst 0o755;
  Sys.readdir src |> Array.iter (fun name ->
      let p = Filename.concat src name in
      if not (Sys.is_directory p) then
        write_file (Filename.concat dst name) (read_file p))

let wal_length ~dir =
  List.fold_left
    (fun acc name ->
      let ic = open_in_bin (Filename.concat dir name) in
      let n = in_channel_length ic in
      close_in_noerr ic;
      acc + n)
    0 (segments dir)

let record_boundaries ~dir =
  let off = ref 0 and bounds = ref [] in
  List.iter
    (fun name ->
      let data = read_file (Filename.concat dir name) in
      let len = String.length data in
      let pos = ref 0 in
      (* a segment starts a record even if the previous one was torn *)
      (try
         while !pos < len do
           bounds := (!off + !pos) :: !bounds;
           if data.[!pos] = '\xB1' then begin
             if !pos + 6 > len then raise Exit;
             let plen =
               Char.code data.[!pos + 2]
               lor (Char.code data.[!pos + 3] lsl 8)
               lor (Char.code data.[!pos + 4] lsl 16)
               lor (Char.code data.[!pos + 5] lsl 24)
             in
             let next = !pos + 10 + plen in
             if next > len then raise Exit;
             pos := next
           end
           else
             match String.index_from_opt data !pos '\n' with
             | None -> raise Exit
             | Some nl -> pos := nl + 1
         done
       with Exit -> ());
      off := !off + len)
    (segments dir);
  let bounds = List.sort_uniq compare (0 :: !bounds) in
  (List.filter (fun b -> b < !off) bounds, !off)

let truncate_at ~dir n =
  if n < 0 then invalid_arg "Torn.truncate_at: negative offset";
  let off = ref 0 in
  List.iter
    (fun name ->
      let path = Filename.concat dir name in
      let data = read_file path in
      let len = String.length data in
      if !off >= n then Sys.remove path
      else if !off + len > n then write_file path (String.sub data 0 (n - !off));
      off := !off + len)
    (segments dir)

let flip_byte ~dir n =
  if n < 0 then invalid_arg "Torn.flip_byte: negative offset";
  let off = ref 0 and hit = ref false in
  List.iter
    (fun name ->
      let path = Filename.concat dir name in
      let data = read_file path in
      let len = String.length data in
      if (not !hit) && n < !off + len then begin
        hit := true;
        let b = Bytes.of_string data in
        Bytes.set b (n - !off) (Char.chr (Char.code (Bytes.get b (n - !off)) lxor 0xff));
        write_file path (Bytes.to_string b)
      end;
      off := !off + len)
    (segments dir);
  if not !hit then invalid_arg "Torn.flip_byte: offset past end of WAL"
