(** Crash-site carving over a durable store directory
    ({!Gridbw_store.Store}).

    A crash can cut the write-ahead log at any byte.  These helpers carve
    copies of a journaled run at chosen byte offsets — every record
    boundary, mid-record, a flipped byte — so recovery can be exercised
    against the full crash matrix.  They work on raw bytes (a WAL segment
    is a sequence of newline-terminated lines) and deliberately do not
    depend on [gridbw_store], keeping the harness independent of the code
    under test.

    Offsets are global positions in the concatenation of the store's
    [wal-*.log] segments in segment order. *)

val copy_store : src:string -> dst:string -> unit
(** Copy every regular file of store directory [src] into [dst]
    (created if missing).  The copy is a valid store directory. *)

val wal_length : dir:string -> int
(** Total bytes across the store's WAL segments. *)

val record_boundaries : dir:string -> int list * int
(** [(boundaries, total)]: the global byte offsets at which a WAL record
    starts (sorted, starting with [0] when the log is non-empty and
    excluding [total]), and the total WAL length.  Truncating at a
    boundary cuts cleanly {e before} that record; truncating strictly
    between two boundaries leaves a torn record. *)

val truncate_at : dir:string -> int -> unit
(** Cut the WAL to its first [n] bytes, as a crash at that offset would:
    later segments are deleted, the segment containing the cut is
    rewritten to its surviving prefix (removed entirely when empty). *)

val flip_byte : dir:string -> int -> unit
(** Corrupt the WAL byte at global offset [n] (XOR [0xff]) in place —
    a bit-rot / misdirected-write drill for the CRC check.  Raises
    [Invalid_argument] if [n] is past the end of the log. *)
