(** Fault injection and recovery: replay GREEDY / WINDOW admission as a
    discrete-event simulation while a fault script revises port
    capacities, aborts hosts and preempts transfers.

    With an empty script the replay is {e bit-identical} to
    {!Gridbw_core.Flexible.greedy} / [window] — same decision stream,
    same accepted order, same summary floats — so fault runs compare
    cleanly against the fault-free baselines.

    When a degradation shrinks a port below its committed bandwidth, a
    {!Victim} policy picks transfers to preempt.  Under [Resubmit]
    recovery a preempted request comes back as a {e residual} request
    (volume = remaining MB, same deadline and rate cap) after the control
    plane's renegotiation delay; if the renegotiation is rejected (the
    port is still degraded), the client re-signals when a degraded port
    is next restored.  All time spent waiting accrues as
    guarantee-violation time. *)

type admission = Greedy | Window of float  (** WINDOW with its batching step *)

type recovery =
  | No_recovery  (** preempted transfers are lost *)
  | Resubmit  (** residual re-admission after the renegotiation delay *)

type config = {
  policy : Gridbw_core.Policy.t;  (** rate policy for admission *)
  admission : admission;
  victim : Victim.t;
  recovery : recovery;
  control : Gridbw_control.Plane.config;  (** sets the renegotiation delay *)
  check_invariants : bool;
      (** assert after every event that no port exceeds its current
          capacity (testing aid; raises [Failure] on violation) *)
}

val default_config :
  ?policy:Gridbw_core.Policy.t -> ?admission:admission -> unit -> config
(** Min-rate GREEDY, smallest-residual victims, resubmit recovery,
    default control plane, invariant checks off. *)

val admission_name : admission -> string

(** One contiguous constant-rate service interval actually delivered. *)
type service = { s_ingress : int; s_egress : int; s_bw : float; s_from : float; s_until : float }

type report = {
  result : Gridbw_core.Types.result;
      (** initial admission decisions, comparable to the fault-free run *)
  outcomes : Gridbw_metrics.Resilience.outcome list;  (** per request, input order *)
  stats : Gridbw_metrics.Resilience.t;
  services : service list;
      (** every delivered interval, for post-hoc capacity auditing *)
  span : float;  (** workload span used for goodput *)
}

val run :
  ?ctx:Gridbw_core.Runtime.ctx ->
  Gridbw_topology.Fabric.t ->
  config ->
  Fault.event list ->
  Gridbw_request.Request.t list ->
  report
(** Validates the script against the fabric ({!Fault.validate}) and the
    requests against the fabric, then simulates.  Deterministic: same
    inputs give the same report.

    With [obs]: admissions trace as under the fault-free heuristics,
    engine pops emit [Dispatch] events, capacity revisions emit
    [Capacity] events, each effective shed round emits a [Shed] event
    (and runs under the ["shed"] profiling span), and preemptions emit
    [Preempt] events.  Residual re-admissions re-use the original
    request id, so a fault-run trace can contain several Accept records
    for one id — [gridbw replay-trace] therefore targets plain-run
    traces only.

    With [store], the same event stream is journaled durably.  Recovery
    of an engine-driven journal restores its bookings and mirror ledger,
    but resuming mid-run is only supported for plain GREEDY journals
    ({!Gridbw_core.Flexible.greedy_resume}). *)

val scheduler : config -> Fault.event list -> Gridbw_core.Scheduler.t
(** The injector as a first-class scheduler: runs the full fault
    simulation and exposes the admission decision stream
    ([(run ...).result]).  Named ["faulty-<admission>[<n> events]"]. *)
