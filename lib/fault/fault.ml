module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Rng = Gridbw_prng.Rng
module Dist = Gridbw_prng.Dist

type side = Ingress | Egress

type event =
  | Degrade of { side : side; port : int; factor : float; from_ : float; until : float }
  | Abort of { request_id : int; at : float }
  | Preempt of { request_id : int; at : float }

let side_name = function Ingress -> "ingress" | Egress -> "egress"

let time_of = function
  | Degrade { from_; _ } -> from_
  | Abort { at; _ } | Preempt { at; _ } -> at

let compare_events a b =
  match Float.compare (time_of a) (time_of b) with
  | 0 -> Stdlib.compare a b
  | c -> c

let sort = List.sort compare_events

let pp_event ppf = function
  | Degrade { side; port; factor; from_; until } ->
      Format.fprintf ppf "degrade %s %d to %.0f%% on [%.2f,%.2f)" (side_name side) port
        (100. *. factor) from_ until
  | Abort { request_id; at } -> Format.fprintf ppf "abort r%d @@ %.2f" request_id at
  | Preempt { request_id; at } -> Format.fprintf ppf "preempt r%d @@ %.2f" request_id at

let validate fabric events =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  List.iter
    (fun e ->
      match e with
      | Degrade { side; port; factor; from_; until } ->
          let valid =
            match side with
            | Ingress -> Fabric.valid_ingress fabric port
            | Egress -> Fabric.valid_egress fabric port
          in
          if not valid then fail "Fault.validate: bad %s port %d" (side_name side) port;
          if not (Float.is_finite factor) || factor < 0. || factor > 1. then
            fail "Fault.validate: degradation factor %g outside [0, 1]" factor;
          if not (Float.is_finite from_ && Float.is_finite until) || from_ < 0. || from_ >= until
          then fail "Fault.validate: bad degradation window [%g, %g)" from_ until
      | Abort { at; _ } | Preempt { at; _ } ->
          if not (Float.is_finite at) || at < 0. then fail "Fault.validate: bad event time %g" at)
    events;
  (* Overlapping degradations of one port would make "restore to nominal"
     ambiguous; the generator produces renewal (non-overlapping) outages
     per port and scripts must do the same. *)
  let degs =
    List.filter_map
      (function Degrade { side; port; from_; until; _ } -> Some (side, port, from_, until) | _ -> None)
      events
    |> List.sort Stdlib.compare
  in
  let rec check = function
    | (s1, p1, _, u1) :: ((s2, p2, f2, _) :: _ as rest) ->
        if s1 = s2 && p1 = p2 && f2 < u1 then
          fail "Fault.validate: overlapping degradations on %s port %d" (side_name s1) p1;
        check rest
    | _ -> ()
  in
  check degs

type spec = {
  mtbf : float;
  mean_outage : float;
  depth_lo : float;
  depth_hi : float;
}

let default_spec = { mtbf = 400.0; mean_outage = 60.0; depth_lo = 0.2; depth_hi = 0.6 }

let check_spec s =
  if s.mtbf <= 0. || not (Float.is_finite s.mtbf) then
    invalid_arg "Fault.generate: mtbf must be positive and finite";
  if s.mean_outage <= 0. || not (Float.is_finite s.mean_outage) then
    invalid_arg "Fault.generate: mean_outage must be positive and finite";
  if not (Float.is_finite s.depth_lo && Float.is_finite s.depth_hi) || s.depth_lo < 0.
     || s.depth_hi > 1. || s.depth_lo > s.depth_hi
  then invalid_arg "Fault.generate: depth range must satisfy 0 <= lo <= hi <= 1"

let generate rng fabric ~horizon spec =
  check_spec spec;
  if horizon <= 0. || not (Float.is_finite horizon) then
    invalid_arg "Fault.generate: horizon must be positive and finite";
  let port_events side count =
    List.concat
      (List.init count (fun port ->
           (* Renewal process: up-time ~ Exp(mtbf), outage ~ Exp(mean_outage),
              retained capacity uniform in [depth_lo, depth_hi]. *)
           let rec loop acc t =
             let t = t +. Dist.exponential rng ~mean:spec.mtbf in
             if t >= horizon then List.rev acc
             else
               let until = t +. Dist.exponential rng ~mean:spec.mean_outage in
               let factor = Rng.float_in rng spec.depth_lo spec.depth_hi in
               loop (Degrade { side; port; factor; from_ = t; until } :: acc) until
           in
           loop [] 0.))
  in
  let events =
    port_events Ingress (Fabric.ingress_count fabric)
    @ port_events Egress (Fabric.egress_count fabric)
  in
  sort events

let generate_aborts rng ~fraction requests =
  if fraction < 0. || fraction > 1. || not (Float.is_finite fraction) then
    invalid_arg "Fault.generate_aborts: fraction outside [0, 1]";
  List.filter_map
    (fun (r : Request.t) ->
      if Rng.float rng 1.0 < fraction then
        Some (Abort { request_id = r.id; at = Rng.float_in rng r.ts r.tf })
      else None)
    requests
  |> sort

let horizon_of_requests requests =
  List.fold_left (fun acc (r : Request.t) -> Float.max acc r.tf) 0.0 requests
