(* Offline span aggregation.  See trace_report.mli. *)

module Span = Gridbw_obs.Span
module Metrics = Gridbw_obs.Metrics
module Codec = Gridbw_wire.Codec
module Frame = Gridbw_wire.Frame

type t = { spans : Span.t list; skipped : int }

let spans t = t.spans
let skipped t = t.skipped

(* Mixed traces interleave span records with event records (a serve
   trace, a WAL segment fed directly); anything that is not a span is
   counted and skipped.  Binary records are sniffed frame by frame,
   text lines by shape. *)
let of_string content =
  let len = String.length content in
  let rec go acc skipped pos =
    if pos >= len then Ok { spans = List.rev acc; skipped }
    else if Frame.is_binary content.[pos] then
      match Frame.decode content ~pos with
      | Codec.Incomplete -> Error "truncated binary record at end of trace"
      | Codec.Corrupt msg -> Error ("corrupt binary record: " ^ msg)
      | Codec.Value ((tag, body), next) ->
          if tag <> Span.frame_tag then go acc (skipped + 1) next
          else (
            match Span.Binary.of_body body with
            | Ok sp -> go (sp :: acc) skipped next
            | Error msg -> Error ("corrupt span record: " ^ msg))
    else
      let nl = match String.index_from_opt content pos '\n' with
        | Some nl -> nl
        | None -> len
      in
      let line = String.sub content pos (nl - pos) in
      let next = nl + 1 in
      if String.trim line = "" then go acc skipped next
      else if Span.looks_like_json_span line then
        match Result.bind (Gridbw_obs.Json.parse line) Span.of_json with
        | Ok sp -> go (sp :: acc) skipped next
        | Error msg -> Error ("corrupt span line: " ^ msg)
      else go acc (skipped + 1) next
  in
  go [] 0 0

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string content

(* --- rendering --- *)

let pp_ns ns =
  if Float.is_nan ns then "-"
  else if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.3fs" (ns /. 1e9)

type row = { label : string; count : int; sum : float; p50 : float; p95 : float; p99 : float }

let row_of_hist label h =
  {
    label;
    count = Metrics.hist_count h;
    sum = Metrics.hist_sum h;
    p50 = Metrics.percentile h 0.5;
    p95 = Metrics.percentile h 0.95;
    p99 = Metrics.percentile h 0.99;
  }

let stage_rows spans =
  let reg = Metrics.create () in
  let hist name = Metrics.histogram reg name in
  let stage_h = List.map (fun st -> (st, hist (Span.stage_name st))) Span.all_stages in
  let sum_h = hist "stage-sum" and total_h = hist "end-to-end" in
  List.iter
    (fun sp ->
      List.iter
        (fun (st, h) ->
          let d = Span.duration sp st in
          if d > 0. then Metrics.observe h d)
        stage_h;
      Metrics.observe sum_h (Span.stage_sum sp);
      Metrics.observe total_h (Span.total_ns sp))
    spans;
  ( List.filter_map
      (fun (st, h) ->
        if Metrics.hist_count h = 0 then None else Some (row_of_hist (Span.stage_name st) h))
      stage_h,
    row_of_hist "stage sum" sum_h,
    row_of_hist "end-to-end" total_h )

let slowest spans =
  List.stable_sort (fun a b -> compare (Span.total_ns b) (Span.total_ns a)) spans

let dominant_stage sp =
  List.fold_left
    (fun best st -> match best with
      | Some b when Span.duration sp b >= Span.duration sp st -> best
      | _ -> if Span.duration sp st > 0. then Some st else best)
    None Span.all_stages

let render ?(top = 10) t =
  let b = Buffer.create 1024 in
  let spans = t.spans in
  let n = List.length spans in
  Buffer.add_string b
    (Printf.sprintf "trace report: %d spans (%d other records skipped)\n" n t.skipped);
  if n = 0 then Buffer.contents b
  else begin
    let rows, sum_row, total_row = stage_rows spans in
    let grand = List.fold_left (fun a r -> a +. r.sum) 0. rows in
    Buffer.add_string b
      (Printf.sprintf "\n%-16s %8s %10s %10s %10s %12s %7s\n" "stage" "count" "p50" "p95"
         "p99" "total" "share");
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%-16s %8d %10s %10s %10s %12s %6.1f%%\n" r.label r.count
             (pp_ns r.p50) (pp_ns r.p95) (pp_ns r.p99) (pp_ns r.sum)
             (if grand > 0. then 100. *. r.sum /. grand else 0.)))
      rows;
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%-16s %8d %10s %10s %10s %12s\n" r.label r.count (pp_ns r.p50)
             (pp_ns r.p95) (pp_ns r.p99) (pp_ns r.sum)))
      [ sum_row; total_row ];
    if total_row.p50 > 0. then
      Buffer.add_string b
        (Printf.sprintf "stage-sum p50 coverage: %.1f%% of end-to-end p50\n"
           (100. *. sum_row.p50 /. total_row.p50));
    let top_spans = slowest spans in
    let k = min top (List.length top_spans) in
    Buffer.add_string b (Printf.sprintf "\ntop %d slowest requests:\n" k);
    List.iteri
      (fun i sp ->
        if i < k then begin
          Buffer.add_string b
            (Printf.sprintf "  span %d%s conn=%d total=%s probes=%d" (Span.id sp)
               (match Span.req sp with Some r -> Printf.sprintf " req=%d" r | None -> "")
               (Span.conn sp)
               (pp_ns (Span.total_ns sp))
               (Span.probes sp));
          (match dominant_stage sp with
          | Some st ->
              Buffer.add_string b
                (Printf.sprintf " dominant=%s (%s)" (Span.stage_name st)
                   (pp_ns (Span.duration sp st)))
          | None -> ());
          Buffer.add_char b '\n'
        end)
      top_spans;
    Buffer.contents b
  end
