module Event = Gridbw_obs.Event
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Rate_profile = Gridbw_alloc.Rate_profile

type t = {
  events : Event.t list;
  requests : Request.t list;
  accepted : Allocation.t list;
}

let monotone events =
  let rec go last = function
    | [] -> true
    | e :: rest ->
        let t = Event.time e in
        t >= last && go t rest
  in
  go neg_infinity events

let request_of ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate =
  Request.make ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate

let of_events events =
  try
    (* [all] is the original input list: arrivals carry their input-list
       position, and summary float accumulation is order-sensitive. *)
    let requests =
      List.filter_map
        (function
          | Event.Arrival { seq; id; ingress; egress; volume; ts; tf; max_rate; _ } ->
              Some (seq, request_of ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate)
          | _ -> None)
        events
      |> List.stable_sort (fun (a, _) (b, _) -> compare (a : int) b)
      |> List.map snd
    in
    (* [accepted] in decision order: Accept/Reshape events are emitted as
       decisions are taken, and embed the full request, so the allocation
       (tau included) is rebuilt from the trace alone.  A Reshape both
       admits its own request and revises the profiles of still-pending
       earlier admits, so the final list carries each transfer's last
       schedule, exactly like the live engine's result. *)
    let accepted =
      let tbl = Hashtbl.create 64 in
      let rev_order = ref [] in
      let admit id a =
        if not (Hashtbl.mem tbl id) then rev_order := id :: !rev_order;
        Hashtbl.replace tbl id a
      in
      List.iter
        (function
          | Event.Accept { id; ingress; egress; volume; ts; tf; max_rate; bw; sigma; _ } ->
              let request = request_of ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate in
              admit id (Allocation.make ~request ~bw ~sigma)
          | Event.Reshape { id; ingress; egress; volume; ts; tf; max_rate; profile; revised; _ }
            ->
              Array.iter
                (fun (rid, segs) ->
                  match Hashtbl.find_opt tbl rid with
                  | None -> ()
                  | Some (old : Allocation.t) ->
                      Hashtbl.replace tbl rid
                        (Allocation.of_profile ~request:old.Allocation.request
                           (Rate_profile.of_triples segs)))
                revised;
              let request = request_of ~id ~ingress ~egress ~volume ~ts ~tf ~max_rate in
              admit id (Allocation.of_profile ~request (Rate_profile.of_triples profile))
          | _ -> ())
        events;
      List.rev_map (fun id -> Hashtbl.find tbl id) !rev_order
    in
    Ok { events; requests; accepted }
  with Invalid_argument msg -> Error ("invalid event fields: " ^ msg)

let of_lines lines =
  let rec parse n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then parse (n + 1) acc rest
        else if Gridbw_obs.Span.looks_like_json_span line then
          (* serve traces interleave request spans with events; replay
             only consumes the events *)
          parse (n + 1) acc rest
        else begin
          match Event.of_line line with
          | Ok e -> parse (n + 1) (e :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" n msg)
        end
  in
  match parse 1 [] lines with Ok events -> of_events events | Error _ as e -> e

(* Binary (or mixed-format) traces: decode record by record, sniffing
   each one's form from its first byte. *)
let of_binary content =
  let module Codec = Gridbw_wire.Codec in
  let len = String.length content in
  let rec go n acc pos =
    if pos >= len then of_events (List.rev acc)
    else
      match Gridbw_obs.Event_codec.sniff_decode content ~pos with
      | Codec.Value (e, next) -> go (n + 1) (e :: acc) next
      | Codec.Incomplete -> Error (Printf.sprintf "record %d: truncated trace" n)
      | Codec.Corrupt msg -> (
          (* Not an event: serve traces interleave span records (their
             own frame tag / JSON shape) — skip anything that decodes
             as a span, keep the error otherwise. *)
          match Gridbw_obs.Span.sniff_decode content ~pos with
          | Codec.Value (_, next) -> go (n + 1) acc next
          | _ -> Error (Printf.sprintf "record %d: %s" n msg))
  in
  go 1 [] 0

let of_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* The binary magic byte is not printable ASCII: a trace opening with
     it is binary (possibly mixed), anything else is plain JSONL. *)
  if String.length content > 0 && Gridbw_wire.Frame.is_binary content.[0] then
    of_binary content
  else of_lines (String.split_on_char '\n' content)

let fabric t =
  let rec leading acc = function
    | Event.Capacity { side; port; capacity; _ } :: rest ->
        leading ((side, port, capacity) :: acc) rest
    | _ -> acc
  in
  match leading [] t.events with
  | [] -> Error `No_prefix
  | caps ->
      let dim side =
        List.fold_left (fun m (s, p, _) -> if s = side then max m (p + 1) else m) 0 caps
      in
      let side_caps side n =
        let a = Array.make n Float.nan in
        (* [caps] is reversed stream order, so the first write per port wins:
           the latest leading event for a revised port sticks. *)
        List.iter
          (fun (s, p, c) -> if s = side && Float.is_nan a.(p) then a.(p) <- c)
          caps;
        a
      in
      let side_name = function Event.Ingress -> "ingress" | Event.Egress -> "egress" in
      let check side a =
        if Array.length a = 0 then
          Error (`Invalid (Printf.sprintf "no %s port in capacity prefix" (side_name side)))
        else
          let bad = ref None in
          Array.iteri
            (fun p c ->
              if !bad = None then
                if Float.is_nan c then
                  bad :=
                    Some
                      (Printf.sprintf "%s port %d missing from capacity prefix" (side_name side) p)
                else if not (Float.is_finite c && c > 0.) then
                  bad :=
                    Some
                      (Printf.sprintf "%s port %d has invalid capacity %g" (side_name side) p c))
            a;
          match !bad with None -> Ok a | Some msg -> Error (`Invalid msg)
      in
      let ( let* ) = Result.bind in
      let* ingress = check Event.Ingress (side_caps Event.Ingress (dim Event.Ingress)) in
      let* egress = check Event.Egress (side_caps Event.Egress (dim Event.Egress)) in
      Ok (Gridbw_topology.Fabric.make ~ingress ~egress)

let summary fabric t = Summary.compute fabric ~all:t.requests ~accepted:t.accepted
