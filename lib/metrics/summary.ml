module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger

type t = {
  total : int;
  accepted : int;
  accept_rate : float;
  utilization : float;
  raw_utilization : float;
  volume_accept_rate : float;
  mean_bw : float;
  mean_speedup : float;
  mean_start_delay : float;
  span : float;
}

let zero =
  {
    total = 0;
    accepted = 0;
    accept_rate = 0.0;
    utilization = 0.0;
    raw_utilization = 0.0;
    volume_accept_rate = 0.0;
    mean_bw = 0.0;
    mean_speedup = 0.0;
    mean_start_delay = 0.0;
    span = 0.0;
  }

let compute fabric ~all ~accepted =
  match all with
  | [] -> zero
  | first :: _ ->
      let t0, t1 =
        List.fold_left
          (fun (t0, t1) (r : Request.t) -> (Float.min t0 r.ts, Float.max t1 r.tf))
          (first.Request.ts, first.Request.tf)
          all
      in
      let span = t1 -. t0 in
      let total = List.length all in
      let accepted_n = List.length accepted in
      let offered_volume = List.fold_left (fun acc (r : Request.t) -> acc +. r.volume) 0.0 all in
      let granted_volume =
        List.fold_left (fun acc (a : Allocation.t) -> acc +. a.request.Request.volume) 0.0 accepted
      in
      (* B_scaled (section 2.2): clamp each port's capacity to the
         time-averaged rate demanded through it, so ports no request ever
         targets do not count in the denominator. *)
      let demand_in = Array.make (Fabric.ingress_count fabric) 0.0 in
      let demand_out = Array.make (Fabric.egress_count fabric) 0.0 in
      List.iter
        (fun (r : Request.t) ->
          demand_in.(r.ingress) <- demand_in.(r.ingress) +. r.volume;
          demand_out.(r.egress) <- demand_out.(r.egress) +. r.volume)
        all;
      let scaled_total =
        let clamp demand cap = Float.min cap (if span > 0. then demand /. span else 0.0) in
        let sum_side demand cap_of n =
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. clamp demand.(i) (cap_of i)
          done;
          !acc
        in
        0.5
        *. (sum_side demand_in (Fabric.ingress_capacity fabric) (Fabric.ingress_count fabric)
           +. sum_side demand_out (Fabric.egress_capacity fabric) (Fabric.egress_count fabric))
      in
      let granted_rate = if span > 0. then granted_volume /. span else 0.0 in
      let mean over n = if n = 0 then 0.0 else over /. float_of_int n in
      let sum_bw, sum_speedup, sum_delay =
        List.fold_left
          (fun (b, s, d) (a : Allocation.t) ->
            ( b +. a.bw,
              s +. (a.bw /. Request.min_rate a.request),
              d +. (a.sigma -. a.request.Request.ts) ))
          (0.0, 0.0, 0.0) accepted
      in
      {
        total;
        accepted = accepted_n;
        accept_rate = float_of_int accepted_n /. float_of_int total;
        utilization = (if scaled_total > 0. then granted_rate /. scaled_total else 0.0);
        raw_utilization =
          (if span > 0. then granted_rate /. Fabric.half_total_capacity fabric else 0.0);
        volume_accept_rate = (if offered_volume > 0. then granted_volume /. offered_volume else 0.0);
        mean_bw = mean sum_bw accepted_n;
        mean_speedup = mean sum_speedup accepted_n;
        mean_start_delay = mean sum_delay accepted_n;
        span;
      }

let guaranteed_count ~f accepted =
  List.fold_left
    (fun acc (a : Allocation.t) ->
      let target = Float.max (f *. a.request.Request.max_rate) (Request.min_rate a.request) in
      if a.bw >= target *. (1. -. 1e-9) then acc + 1 else acc)
    0 accepted

let all_feasible fabric accepted =
  let ledger = Ledger.create fabric in
  let ok =
    List.for_all
      (fun (a : Allocation.t) ->
        Allocation.meets_deadline a && Allocation.within_rate_bounds a
        && Request.routed_on a.request fabric
        &&
        (Ledger.reserve_interval ledger ~ingress:a.request.Request.ingress
           ~egress:a.request.Request.egress ~bw:a.bw ~from_:a.sigma ~until:a.tau;
         true))
      accepted
  in
  ok && Ledger.within_capacity ledger

let pp ppf t =
  Format.fprintf ppf
    "@[<v>requests: %d, accepted: %d (%.1f%%)@,\
     utilization (scaled): %.1f%%, raw: %.1f%%@,\
     volume accept rate: %.1f%%@,\
     mean bw: %.1f MB/s, mean speedup: %.2fx, mean start delay: %.1fs@]"
    t.total t.accepted (100. *. t.accept_rate) (100. *. t.utilization)
    (100. *. t.raw_utilization)
    (100. *. t.volume_accept_rate)
    t.mean_bw t.mean_speedup t.mean_start_delay
