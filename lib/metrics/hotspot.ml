module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation

type side = Ingress | Egress

type report = {
  side : side;
  port : int;
  capacity : float;
  demanded_rate : float;
  granted_rate : float;
  lost_rate : float;
  pressure : float;
  requests : int;
  accepted : int;
}

let analyze fabric ~all ~accepted =
  match all with
  | [] -> []
  | first :: _ ->
      let t0, t1 =
        List.fold_left
          (fun (t0, t1) (r : Request.t) -> (Float.min t0 r.ts, Float.max t1 r.tf))
          (first.Request.ts, first.Request.tf)
          all
      in
      let span = Float.max 1e-9 (t1 -. t0) in
      let m = Fabric.ingress_count fabric and n = Fabric.egress_count fabric in
      let demand_in = Array.make m 0.0 and demand_out = Array.make n 0.0 in
      let count_in = Array.make m 0 and count_out = Array.make n 0 in
      List.iter
        (fun (r : Request.t) ->
          demand_in.(r.ingress) <- demand_in.(r.ingress) +. r.volume;
          demand_out.(r.egress) <- demand_out.(r.egress) +. r.volume;
          count_in.(r.ingress) <- count_in.(r.ingress) + 1;
          count_out.(r.egress) <- count_out.(r.egress) + 1)
        all;
      let granted_in = Array.make m 0.0 and granted_out = Array.make n 0.0 in
      let acc_in = Array.make m 0 and acc_out = Array.make n 0 in
      List.iter
        (fun (a : Allocation.t) ->
          let r = a.Allocation.request in
          granted_in.(r.Request.ingress) <- granted_in.(r.Request.ingress) +. r.Request.volume;
          granted_out.(r.Request.egress) <- granted_out.(r.Request.egress) +. r.Request.volume;
          acc_in.(r.Request.ingress) <- acc_in.(r.Request.ingress) + 1;
          acc_out.(r.Request.egress) <- acc_out.(r.Request.egress) + 1)
        accepted;
      let report side port capacity demand granted requests accepted =
        let demanded_rate = demand /. span and granted_rate = granted /. span in
        {
          side;
          port;
          capacity;
          demanded_rate;
          granted_rate;
          lost_rate = demanded_rate -. granted_rate;
          pressure = demanded_rate /. capacity;
          requests;
          accepted;
        }
      in
      let ins =
        List.init m (fun i ->
            report Ingress i (Fabric.ingress_capacity fabric i) demand_in.(i) granted_in.(i)
              count_in.(i) acc_in.(i))
      in
      let outs =
        List.init n (fun e ->
            report Egress e (Fabric.egress_capacity fabric e) demand_out.(e) granted_out.(e)
              count_out.(e) acc_out.(e))
      in
      List.sort (fun a b -> Float.compare b.pressure a.pressure) (ins @ outs)

let hot_spots ?(threshold = 1.0) reports = List.filter (fun r -> r.pressure >= threshold) reports

let pp ppf r =
  Format.fprintf ppf "%s %d: pressure %.2f (demand %.1f / cap %.1f MB/s), %d/%d accepted"
    (match r.side with Ingress -> "ingress" | Egress -> "egress")
    r.port r.pressure r.demanded_rate r.capacity r.accepted r.requests
