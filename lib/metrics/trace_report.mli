(** Offline aggregation of request trace spans ([gridbw trace-report]).

    Reads any trace file — binary frames, JSONL, or a mix — keeps the
    span records and skips everything else (events, WAL records), then
    renders a per-stage latency breakdown (p50/p95/p99 through
    {!Gridbw_obs.Metrics.percentile}'s log₂-bucket estimate) and the
    top-K slowest requests. *)

type t

val of_string : string -> (t, string) result
val load : string -> (t, string) result
(** Whole-file read + {!of_string}; [Error] is the I/O or decode
    failure. *)

val spans : t -> Gridbw_obs.Span.t list
(** In file order. *)

val skipped : t -> int
(** Non-span records skipped. *)

val render : ?top:int -> t -> string
(** The report: per-stage table (count, p50/p95/p99, total, share of
    stage time), the stage-sum and end-to-end distributions with their
    p50 coverage ratio, and the [top] (default 10) slowest spans. *)
