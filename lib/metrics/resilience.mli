(** Failure-aware metrics for runs under fault injection.

    The fault subsystem ([lib/fault]) records, for every request, what
    actually happened to its transfer — admission, delivered bytes,
    preemptions, recovery, completion time — as an {!outcome}; this module
    turns a run's outcomes into the aggregate resilience statistics the
    E16 experiment reports.  It is deliberately independent of the fault
    model itself so any driver can produce outcomes. *)

type outcome = {
  request : Gridbw_request.Request.t;
  admitted : bool;  (** was ever granted an allocation *)
  aborted : bool;  (** its end host failed mid-transfer *)
  delivered : float;  (** MB actually transferred before the deadline *)
  finished_at : float option;  (** completion time, if the volume completed *)
  preemptions : int;  (** times an allocation of this request was revoked *)
  violation_time : float;
      (** seconds an admitted, non-aborted transfer spent without service
          between a preemption and either its re-admission or its
          deadline *)
}

type t = {
  total : int;
  admitted : int;
  preempted : int;  (** requests hit by >= 1 preemption (aborts excluded) *)
  aborted : int;
  recovered : int;  (** preempted requests that still finished by deadline *)
  recovered_fraction : float;  (** recovered / preempted; 1 if none preempted *)
  guarantee_kept : float;
      (** fraction of admitted, non-aborted requests whose full volume
          completed by the original deadline — the paper's admission
          guarantee, now under faults *)
  violation_minutes : float;  (** Σ violation_time / 60 *)
  goodput : float;  (** delivered MB / span, MB/s *)
  delivered_fraction : float;  (** delivered MB / promised (admitted) MB *)
}

val zero : t

val compute : span:float -> outcome list -> t
(** Aggregate; [span] is the workload's time span (for goodput). *)

val pp : Format.formatter -> t -> unit
