(** Rebuild a run summary from a JSONL event trace.

    A plain run traced with a JSONL sink ([gridbw run --trace-out]) is
    self-contained: [Arrival] events embed the full request and their
    input-list position, [Accept] events embed the request plus the granted
    [bw]/[sigma].  This module parses such a trace back into the original
    request list and decision-ordered allocations, so
    {!Summary.compute} reproduces the live run's summary bit for bit
    (summary float accumulation is order-sensitive, hence the care with
    ordering).

    Engine-driven traces (the fault injector) are out of scope: residual
    re-admissions duplicate [Accept] ids and [Dispatch] interleaving breaks
    chronology — see {!Gridbw_fault.Injector.run}. *)

type t = {
  events : Gridbw_obs.Event.t list;  (** every parsed event, stream order *)
  requests : Gridbw_request.Request.t list;
      (** arrivals restored to input-list order (by [Arrival.seq]) *)
  accepted : Gridbw_alloc.Allocation.t list;
      (** accepts in decision (stream) order *)
}

val of_lines : string list -> (t, string) result
(** Parse trace lines (blank lines skipped).  [Error] names the first
    offending line (1-based) or the invalid event field. *)

val of_file : string -> (t, string) result
(** {!of_lines} over a JSONL file. *)

val of_events : Gridbw_obs.Event.t list -> (t, string) result

val monotone : Gridbw_obs.Event.t list -> bool
(** Timestamps are non-decreasing in stream order — guaranteed for plain
    (non-engine) runs of every heuristic. *)

val fabric :
  t -> (Gridbw_topology.Fabric.t, [ `No_prefix | `Invalid of string ]) result
(** The fabric described by the trace's {e leading} [Capacity] events (the
    prefix before any other event kind) — counterexample bundles written by
    the fuzzer and durable stores open with one such event per port, making
    the trace fully self-contained.  [Error `No_prefix] when the trace has
    no leading capacity events at all (e.g. a plain [run --trace-out]
    trace, which starts directly with arrivals) — the caller decides the
    fallback.  [Error (`Invalid _)] when a prefix is present but does not
    describe a complete valid fabric (a port with no event, a non-finite
    or non-positive capacity, an empty side) — such a trace must not be
    summarised against a silently substituted fabric. *)

val summary : Gridbw_topology.Fabric.t -> t -> Summary.t
(** The live run's summary, recomputed from the trace alone. *)
