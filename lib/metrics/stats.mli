(** Streaming summary statistics (Welford) and replication aggregates. *)

module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 for fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [+inf] when empty. *)

  val max : t -> float
  (** [-inf] when empty. *)
end

type aggregate = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;  (** normal-approximation 95 % half-width, [1.96 σ/√n] *)
  min : float;
  max : float;
}

val aggregate : float list -> aggregate
(** Summary of replication results; zeros for the empty list. *)

val mean : float list -> float
val pp_aggregate : Format.formatter -> aggregate -> unit
