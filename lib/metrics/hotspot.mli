(** Per-port pressure analysis — the paper's future-work direction of
    "relieving tentative hot spots in the network, that is, ingress/egress
    points that are heavily demanded" (section 7).

    For each access point this reports, time-averaged over the workload
    span, the demanded rate (all requests targeting the port), the granted
    rate (accepted allocations through it), and the rate lost to
    rejections.  Pressure above 1 marks a hot spot: the port was asked for
    more than it can carry. *)

type side = Ingress | Egress

type report = {
  side : side;
  port : int;
  capacity : float;  (** MB/s *)
  demanded_rate : float;  (** Σ volume targeting the port / span *)
  granted_rate : float;  (** Σ accepted volume through the port / span *)
  lost_rate : float;  (** demanded - granted *)
  pressure : float;  (** demanded_rate / capacity; > 1 = hot spot *)
  requests : int;  (** requests targeting the port *)
  accepted : int;
}

val analyze :
  Gridbw_topology.Fabric.t ->
  all:Gridbw_request.Request.t list ->
  accepted:Gridbw_alloc.Allocation.t list ->
  report list
(** One report per port (both sides), sorted by decreasing pressure.
    Empty list for an empty workload. *)

val hot_spots : ?threshold:float -> report list -> report list
(** Ports with [pressure >= threshold] (default 1.0). *)

val pp : Format.formatter -> report -> unit
