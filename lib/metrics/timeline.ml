module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Ledger = Gridbw_alloc.Ledger
module Port = Gridbw_alloc.Port

type t = { fabric : Fabric.t; ledger : Ledger.t; span : (float * float) option }

let build fabric allocations =
  let ledger = Ledger.create fabric in
  let span =
    List.fold_left
      (fun span (a : Allocation.t) ->
        let r = a.Allocation.request in
        if not (Request.routed_on r fabric) then
          invalid_arg (Printf.sprintf "Timeline.build: request %d routed on unknown port" r.Request.id);
        Ledger.reserve_interval ledger ~ingress:r.Request.ingress ~egress:r.Request.egress
          ~bw:a.Allocation.bw ~from_:a.Allocation.sigma ~until:a.Allocation.tau;
        match span with
        | None -> Some (a.Allocation.sigma, a.Allocation.tau)
        | Some (lo, hi) ->
            Some (Float.min lo a.Allocation.sigma, Float.max hi a.Allocation.tau))
      None allocations
  in
  { fabric; ledger; span }

let span t = t.span
let ingress_usage t i ~at = Ledger.usage_at t.ledger (Port.Ingress i) at
let egress_usage t e ~at = Ledger.usage_at t.ledger (Port.Egress e) at

let total_rate t ~at =
  let acc = ref 0.0 in
  for i = 0 to Fabric.ingress_count t.fabric - 1 do
    acc := !acc +. ingress_usage t i ~at
  done;
  !acc

let utilization t ~at = total_rate t ~at /. Fabric.half_total_capacity t.fabric

let sample t ~points =
  if points < 2 then invalid_arg "Timeline.sample: need at least two points";
  match t.span with
  | None -> []
  | Some (lo, hi) ->
      let step = (hi -. lo) /. float_of_int (points - 1) in
      List.init points (fun k ->
          let at = lo +. (float_of_int k *. step) in
          (at, utilization t ~at))

let peak_port_usage t =
  let ins =
    List.init (Fabric.ingress_count t.fabric) (fun i ->
        ( "ingress",
          i,
          Ledger.max_over t.ledger (Port.Ingress i)
            ~from_:(match t.span with Some (lo, _) -> lo | None -> 0.)
            ~until:(match t.span with Some (_, hi) -> hi +. 1. | None -> 1.) ))
  in
  let outs =
    List.init (Fabric.egress_count t.fabric) (fun e ->
        ( "egress",
          e,
          Ledger.max_over t.ledger (Port.Egress e)
            ~from_:(match t.span with Some (lo, _) -> lo | None -> 0.)
            ~until:(match t.span with Some (_, hi) -> hi +. 1. | None -> 1.) ))
  in
  ins @ outs
