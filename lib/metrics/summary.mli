(** Evaluation metrics of the paper (section 2.2 and 2.3) over one
    simulation run. *)

type t = {
  total : int;  (** number of submitted requests *)
  accepted : int;  (** number of accepted requests *)
  accept_rate : float;  (** MAX-REQUESTS objective: accepted / total *)
  utilization : float;
      (** RESOURCE-UTIL objective, time-averaged over the span
          [\[min ts, max tf\]]: granted rate over ½ Σ scaled capacities,
          where each port's capacity is clamped to its demanded rate
          ([B_scaled], section 2.2) so idle ports do not dilute the ratio *)
  raw_utilization : float;
      (** same numerator over the unclamped ½ Σ capacities *)
  volume_accept_rate : float;  (** granted MB / offered MB *)
  mean_bw : float;  (** mean assigned bandwidth over accepted requests *)
  mean_speedup : float;
      (** mean of [bw / MinRate] over accepted requests — how much faster
          than the slowest admissible rate transfers complete (≥ 1) *)
  mean_start_delay : float;  (** mean of [sigma - ts] over accepted *)
  span : float;  (** measurement horizon used for time-averaging *)
}

val compute :
  Gridbw_topology.Fabric.t ->
  all:Gridbw_request.Request.t list ->
  accepted:Gridbw_alloc.Allocation.t list ->
  t
(** All zeros when [all] is empty. *)

val guaranteed_count : f:float -> Gridbw_alloc.Allocation.t list -> int
(** The §2.3 [#guaranteed] count: accepted allocations whose bandwidth is
    at least [max (f × MaxRate, MinRate)] (relative [1e-9] slack). *)

val all_feasible :
  Gridbw_topology.Fabric.t -> Gridbw_alloc.Allocation.t list -> bool
(** Replays the allocations into a fresh ledger and checks the paper's
    constraint set (1) plus per-request deadline and rate bounds.  Intended
    for tests and harness self-checks. *)

val pp : Format.formatter -> t -> unit
