module Request = Gridbw_request.Request

type outcome = {
  request : Request.t;
  admitted : bool;
  aborted : bool;
  delivered : float;
  finished_at : float option;
  preemptions : int;
  violation_time : float;
}

type t = {
  total : int;
  admitted : int;
  preempted : int;
  aborted : int;
  recovered : int;
  recovered_fraction : float;
  guarantee_kept : float;
  violation_minutes : float;
  goodput : float;
  delivered_fraction : float;
}

let zero =
  {
    total = 0;
    admitted = 0;
    preempted = 0;
    aborted = 0;
    recovered = 0;
    recovered_fraction = 1.0;
    guarantee_kept = 1.0;
    violation_minutes = 0.0;
    goodput = 0.0;
    delivered_fraction = 0.0;
  }

(* Same deadline slack as Allocation.meets_deadline. *)
let finished_by_deadline o =
  match o.finished_at with
  | None -> false
  | Some f -> f <= (o.request.Request.tf *. (1. +. 1e-9)) +. 1e-9

let compute ~span outcomes =
  match outcomes with
  | [] -> zero
  | _ ->
      let total = List.length outcomes in
      let count p = List.length (List.filter p outcomes) in
      let admitted = count (fun (o : outcome) -> o.admitted) in
      let aborted = count (fun (o : outcome) -> o.aborted) in
      (* Aborts are end-host failures, not broken network guarantees:
         they are excluded from the recovery and guarantee ratios. *)
      let preempted = count (fun (o : outcome) -> o.preemptions > 0 && not o.aborted) in
      let recovered =
        count (fun (o : outcome) -> o.preemptions > 0 && (not o.aborted) && finished_by_deadline o)
      in
      let kept = count (fun (o : outcome) -> o.admitted && (not o.aborted) && finished_by_deadline o) in
      let guaranteed = admitted - aborted in
      let violation_minutes =
        List.fold_left (fun acc (o : outcome) -> acc +. o.violation_time) 0.0 outcomes /. 60.0
      in
      let delivered = List.fold_left (fun acc (o : outcome) -> acc +. o.delivered) 0.0 outcomes in
      let promised =
        List.fold_left
          (fun acc (o : outcome) -> if o.admitted then acc +. o.request.Request.volume else acc)
          0.0 outcomes
      in
      {
        total;
        admitted;
        preempted;
        aborted;
        recovered;
        recovered_fraction =
          (if preempted = 0 then 1.0 else float_of_int recovered /. float_of_int preempted);
        guarantee_kept =
          (if guaranteed <= 0 then 1.0 else float_of_int kept /. float_of_int guaranteed);
        violation_minutes;
        goodput = (if span > 0. then delivered /. span else 0.0);
        delivered_fraction = (if promised > 0. then delivered /. promised else 0.0);
      }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>admitted: %d/%d (aborted %d)@,\
     preempted: %d, recovered: %d (%.1f%%)@,\
     guarantee kept: %.1f%%, violation: %.2f min@,\
     goodput: %.1f MB/s, delivered: %.1f%% of promised@]"
    t.admitted t.total t.aborted t.preempted t.recovered
    (100. *. t.recovered_fraction)
    (100. *. t.guarantee_kept)
    t.violation_minutes t.goodput
    (100. *. t.delivered_fraction)
