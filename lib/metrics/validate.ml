module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Allocation = Gridbw_alloc.Allocation
module Profile = Gridbw_alloc.Profile
module Rate_profile = Gridbw_alloc.Rate_profile

type violation =
  | Port_overload of {
      side : Hotspot.side;
      port : int;
      at : float;
      usage : float;
      capacity : float;
    }
  | Deadline_miss of { request_id : int; tau : float; tf : float }
  | Rate_above_max of { request_id : int; bw : float; max_rate : float }
  | Start_before_request of { request_id : int; sigma : float; ts : float }
  | Bad_route of { request_id : int; ingress : int; egress : int }
  | Duplicate_request of { request_id : int }
  | Volume_mismatch of { request_id : int; integral : float; volume : float }

let le_cap used cap = used <= cap *. (1. +. 1e-9)

(* Worst instant of a profile against a capacity: walk the level changes. *)
let worst_excess profile capacity =
  let best = ref None in
  let level = ref 0.0 in
  List.iter
    (fun bp ->
      level := Profile.usage_at profile bp;
      if not (le_cap !level capacity) then
        match !best with
        | Some (_, u) when u >= !level -> ()
        | _ -> best := Some (bp, !level))
    (Profile.breakpoints profile);
  !best

let check fabric allocations =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let seen = Hashtbl.create 64 in
  let in_profiles = Array.make (Fabric.ingress_count fabric) Profile.empty in
  let out_profiles = Array.make (Fabric.egress_count fabric) Profile.empty in
  List.iter
    (fun (a : Allocation.t) ->
      let r = a.Allocation.request in
      if Hashtbl.mem seen r.Request.id then add (Duplicate_request { request_id = r.Request.id })
      else Hashtbl.replace seen r.Request.id ();
      if not (Request.routed_on r fabric) then
        add (Bad_route { request_id = r.Request.id; ingress = r.Request.ingress;
                         egress = r.Request.egress })
      else begin
        (* A profiled (malleable) allocation loads its ports step by step;
           a constant one loads them at [bw] over [\[sigma, tau)]. *)
        let segments =
          match a.Allocation.profile with
          | Some p ->
              List.map
                (fun (s : Rate_profile.seg) -> (s.Rate_profile.from_, s.Rate_profile.until, s.Rate_profile.rate))
                (Rate_profile.segments p)
          | None -> [ (a.Allocation.sigma, a.Allocation.tau, a.Allocation.bw) ]
        in
        List.iter
          (fun (from_, until, rate) ->
            in_profiles.(r.Request.ingress) <-
              Profile.add in_profiles.(r.Request.ingress) ~from_ ~until rate;
            out_profiles.(r.Request.egress) <-
              Profile.add out_profiles.(r.Request.egress) ~from_ ~until rate)
          segments
      end;
      if not (Allocation.meets_deadline a) then
        add (Deadline_miss { request_id = r.Request.id; tau = a.Allocation.tau; tf = r.Request.tf });
      if not (Allocation.within_rate_bounds a) then
        add (Rate_above_max
               { request_id = r.Request.id; bw = a.Allocation.bw; max_rate = r.Request.max_rate });
      (match a.Allocation.profile with
      | None -> ()
      | Some p ->
          (* The malleable contract is exact: peak within the host cap
             (with the ledger's slack) and the Kahan integral equal to
             the request volume bit-for-bit. *)
          let peak = Rate_profile.peak p in
          if not (le_cap peak r.Request.max_rate) then
            add (Rate_above_max { request_id = r.Request.id; bw = peak; max_rate = r.Request.max_rate });
          let integral = Rate_profile.integral p in
          if integral <> r.Request.volume then
            add (Volume_mismatch { request_id = r.Request.id; integral; volume = r.Request.volume }));
      if a.Allocation.sigma < r.Request.ts -. 1e-12 then
        add (Start_before_request
               { request_id = r.Request.id; sigma = a.Allocation.sigma; ts = r.Request.ts }))
    allocations;
  Array.iteri
    (fun i p ->
      match worst_excess p (Fabric.ingress_capacity fabric i) with
      | Some (at, usage) ->
          add (Port_overload { side = Hotspot.Ingress; port = i; at; usage;
                               capacity = Fabric.ingress_capacity fabric i })
      | None -> ())
    in_profiles;
  Array.iteri
    (fun e p ->
      match worst_excess p (Fabric.egress_capacity fabric e) with
      | Some (at, usage) ->
          add (Port_overload { side = Hotspot.Egress; port = e; at; usage;
                               capacity = Fabric.egress_capacity fabric e })
      | None -> ())
    out_profiles;
  List.rev !violations

let is_valid fabric allocations = check fabric allocations = []

let pp_violation ppf = function
  | Port_overload { side; port; at; usage; capacity } ->
      Format.fprintf ppf "%s port %d overloaded at t=%.3f: %.3f > %.3f MB/s"
        (match side with Hotspot.Ingress -> "ingress" | Hotspot.Egress -> "egress")
        port at usage capacity
  | Deadline_miss { request_id; tau; tf } ->
      Format.fprintf ppf "request %d finishes at %.3f, after its deadline %.3f" request_id tau tf
  | Rate_above_max { request_id; bw; max_rate } ->
      Format.fprintf ppf "request %d granted %.3f MB/s above its host cap %.3f" request_id bw
        max_rate
  | Start_before_request { request_id; sigma; ts } ->
      Format.fprintf ppf "request %d starts at %.3f before its request time %.3f" request_id sigma
        ts
  | Bad_route { request_id; ingress; egress } ->
      Format.fprintf ppf "request %d routed on unknown ports (%d -> %d)" request_id ingress egress
  | Duplicate_request { request_id } ->
      Format.fprintf ppf "request %d allocated more than once" request_id
  | Volume_mismatch { request_id; integral; volume } ->
      Format.fprintf ppf "request %d profile integrates to %.17g, volume is %.17g" request_id
        integral volume

let report fabric allocations =
  match check fabric allocations with
  | [] -> "schedule is feasible"
  | vs ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "%d violation(s):\n" (List.length vs));
      List.iter
        (fun v -> Buffer.add_string buf (Format.asprintf "  - %a\n" pp_violation v))
        vs;
      Buffer.contents buf
