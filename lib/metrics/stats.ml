module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

type aggregate = { n : int; mean : float; stddev : float; ci95 : float; min : float; max : float }

let aggregate samples =
  match samples with
  | [] -> { n = 0; mean = 0.0; stddev = 0.0; ci95 = 0.0; min = 0.0; max = 0.0 }
  | _ ->
      let w = Welford.create () in
      List.iter (Welford.add w) samples;
      let n = Welford.count w in
      let stddev = Welford.stddev w in
      {
        n;
        mean = Welford.mean w;
        stddev;
        ci95 = 1.96 *. stddev /. sqrt (float_of_int n);
        min = Welford.min w;
        max = Welford.max w;
      }

let mean samples = (aggregate samples).mean

let pp_aggregate ppf a =
  Format.fprintf ppf "%.4f ±%.4f (n=%d, σ=%.4f, [%.4f,%.4f])" a.mean a.ci95 a.n a.stddev a.min
    a.max
