(** Detailed schedule validation.

    {!Summary.all_feasible} answers yes/no; this module explains {e what}
    is wrong with a schedule: which constraint of the paper's set (1) is
    violated, where, when and by how much.  Used by the CLI's [run]
    self-check and by failure-injection tests. *)

type violation =
  | Port_overload of {
      side : Hotspot.side;
      port : int;
      at : float;  (** instant of peak excess *)
      usage : float;
      capacity : float;
    }
  | Deadline_miss of { request_id : int; tau : float; tf : float }
  | Rate_above_max of { request_id : int; bw : float; max_rate : float }
  | Start_before_request of { request_id : int; sigma : float; ts : float }
  | Bad_route of { request_id : int; ingress : int; egress : int }
  | Duplicate_request of { request_id : int }
  | Volume_mismatch of { request_id : int; integral : float; volume : float }
      (** A profiled (malleable) allocation whose Kahan integral is not
          bit-identical to the request volume — the MALLEABLE engine's
          exactness contract.  Constant allocations are exempt (their
          volume is definitionally [bw * (tau - sigma)]). *)

val check :
  Gridbw_topology.Fabric.t -> Gridbw_alloc.Allocation.t list -> violation list
(** Empty list iff the allocations form a feasible schedule.  Port
    overloads are reported once per port at the instant of worst excess;
    per-request violations once per offending allocation.  Capacity
    comparisons use the ledger's relative [1e-9] slack. *)

val is_valid : Gridbw_topology.Fabric.t -> Gridbw_alloc.Allocation.t list -> bool
val pp_violation : Format.formatter -> violation -> unit
val report : Gridbw_topology.Fabric.t -> Gridbw_alloc.Allocation.t list -> string
(** Human-readable multi-line report; "schedule is feasible" when clean. *)
