(** Time-resolved utilization extracted from a set of accepted
    allocations.

    The paper's metrics are aggregates; operators relieve hot spots with
    time series.  A timeline replays allocations into a fresh ledger and
    exposes, per port or fabric-wide, the reserved bandwidth as a
    piecewise-constant function, plus uniform sampling for plotting. *)

type t

val build :
  Gridbw_topology.Fabric.t -> Gridbw_alloc.Allocation.t list -> t
(** Raises [Invalid_argument] if an allocation is routed off the fabric.
    The allocations need not be feasible; the timeline reports whatever
    they sum to. *)

val span : t -> (float * float) option
(** Earliest sigma and latest tau over the allocations; [None] if empty. *)

val ingress_usage : t -> int -> at:float -> float
val egress_usage : t -> int -> at:float -> float

val total_rate : t -> at:float -> float
(** Σ over ingress ports of the reserved bandwidth at [at] (each transfer
    counted once). *)

val utilization : t -> at:float -> float
(** [total_rate / ½ (Σ B_in + Σ B_out)] — instantaneous RESOURCE-UTIL
    against raw capacity. *)

val sample :
  t -> points:int -> (float * float) list
(** [points >= 2] uniform samples of {!utilization} over {!span} (empty
    list when the timeline is empty). *)

val peak_port_usage : t -> (string * int * float) list
(** Per port: ("ingress"/"egress", index, peak reserved bandwidth),
    in fabric order. *)
