module Allocation = Gridbw_alloc.Allocation
module Rng = Gridbw_prng.Rng

type chunk = { at : float; bytes : float }
type report = { offered : float; conformant : float; dropped : float }

let police (a : Allocation.t) ?burst chunks =
  let burst = match burst with Some b -> b | None -> a.Allocation.bw in
  let bucket = Token_bucket.create ~rate:a.Allocation.bw ~burst in
  let last = ref neg_infinity in
  let offered = ref 0.0 and conformant = ref 0.0 in
  List.iter
    (fun c ->
      if c.at < !last then invalid_arg "Enforcer.police: chunks not time-sorted";
      last := c.at;
      offered := !offered +. c.bytes;
      if Token_bucket.try_consume bucket ~at:c.at ~amount:c.bytes then
        conformant := !conformant +. c.bytes)
    chunks;
  { offered = !offered; conformant = !conformant; dropped = !offered -. !conformant }

let well_behaved_sender (a : Allocation.t) ~chunk_seconds =
  if chunk_seconds <= 0. then invalid_arg "Enforcer: chunk_seconds must be positive";
  let volume = a.Allocation.request.Gridbw_request.Request.volume in
  let per_chunk = a.Allocation.bw *. chunk_seconds in
  let rec emit t sent acc =
    if sent >= volume then List.rev acc
    else
      let bytes = Float.min per_chunk (volume -. sent) in
      emit (t +. chunk_seconds) (sent +. bytes) ({ at = t; bytes } :: acc)
  in
  (* First chunk one interval after sigma: tokens accumulate at rate bw, so
     each chunk of bw*dt arrives exactly funded. *)
  emit (a.Allocation.sigma +. chunk_seconds) 0.0 []

let bursty_sender rng (a : Allocation.t) ~chunk_seconds ~overdrive =
  if chunk_seconds <= 0. then invalid_arg "Enforcer: chunk_seconds must be positive";
  if overdrive <= 0. then invalid_arg "Enforcer: overdrive must be positive";
  let volume = a.Allocation.request.Gridbw_request.Request.volume in
  let base = a.Allocation.bw *. chunk_seconds in
  let rec emit t sent acc =
    if sent >= volume then List.rev acc
    else
      let jitter = Rng.float_in rng 0.0 (2.0 *. overdrive) in
      let bytes = Float.min (base *. jitter) (volume -. sent) in
      let acc = if bytes > 0. then { at = t; bytes } :: acc else acc in
      emit (t +. chunk_seconds) (sent +. bytes) acc
  in
  emit (a.Allocation.sigma +. chunk_seconds) 0.0 []
