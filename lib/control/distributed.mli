(** Fully distributed allocation — the paper's scalability future-work
    direction (section 7: "we will consider fully distributed allocation
    algorithms to study the scalability of the approach").

    Each ingress access router admits requests on its own: it knows its
    local ingress port exactly (it grants every reservation through it),
    but sees the egress ports only through periodic gossip — a snapshot of
    every egress counter taken each [gossip_interval] seconds.  Between
    snapshots a router adds its {e own} grants to the stale view, but is
    blind to what the other routers granted; concurrent admissions can
    therefore overbook an egress port.  The experiment measures that
    safety/efficiency trade-off against the centralised GREEDY controller
    (gossip interval 0 is exactly Algorithm 2). *)

type result = {
  total : int;
  accepted : int;
  accept_rate : float;
  egress_violations : int;
      (** admissions that pushed the true egress usage past capacity *)
  peak_overbooking : float;
      (** max over time and egress ports of usage / capacity; <= 1 means
          the distributed run stayed safe *)
  gossip_rounds : int;
}

val run :
  Gridbw_topology.Fabric.t ->
  Gridbw_core.Policy.t ->
  gossip_interval:float ->
  Gridbw_request.Request.t list ->
  result
(** [gossip_interval = 0] refreshes the egress view before every decision
    (equivalent to the centralised controller); it must be non-negative. *)
