module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Engine = Gridbw_sim.Engine
module Online = Gridbw_core.Online
module Policy = Gridbw_core.Policy
module Types = Gridbw_core.Types

type config = { policy : Policy.t; hop_latency : float; decision_latency : float }

let default_config policy = { policy; hop_latency = 0.005; decision_latency = 0.001 }

(* Renegotiating a degraded reservation costs one hop to notify the
   client, one hop to re-signal the ingress router, and a decision: the
   RSVP-style exchange of section 5.4 without the egress broadcast (which
   overlaps the reply). *)
let renegotiation_delay config =
  if config.hop_latency < 0. || config.decision_latency < 0. then
    invalid_arg "Plane.renegotiation_delay: latencies must be non-negative";
  (2. *. config.hop_latency) +. config.decision_latency

type transcript = {
  request : Request.t;
  decision : Types.decision;
  decided_at : float;
  client_informed_at : float;
  messages : int;
}

type stats = {
  transcripts : transcript list;
  accepted : int;
  rejected : int;
  total_messages : int;
  mean_response_time : float;
}

let run fabric config requests =
  if config.hop_latency < 0. || config.decision_latency < 0. then
    invalid_arg "Plane.run: latencies must be non-negative";
  Policy.validate config.policy;
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Plane: request %d routed on unknown port" r.id))
    requests;
  let engine = Engine.create () in
  let ctl = Online.create fabric in
  let transcripts = ref [] in
  let submit (r : Request.t) =
    (* Client sends at ts; the request reaches the ingress router one hop
       later and is decided after the router's processing delay. *)
    let decide_time = r.ts +. config.hop_latency +. config.decision_latency in
    Engine.schedule engine ~time:decide_time (fun engine ->
        let decision = Online.try_admit ctl config.policy r ~at:(Engine.now engine) in
        let informed = Engine.now engine +. config.hop_latency in
        let messages =
          match decision with
          | Types.Accepted _ ->
              (* request + egress broadcast + client reply + teardown
                 when the transfer completes. *)
              4
          | Types.Rejected _ -> 2 (* request + client reply *)
        in
        transcripts :=
          { request = r; decision; decided_at = Engine.now engine;
            client_informed_at = informed; messages }
          :: !transcripts)
  in
  List.iter submit requests;
  Engine.run engine;
  let transcripts = List.sort (fun a b -> Request.compare a.request b.request) !transcripts in
  let accepted =
    List.length
      (List.filter (fun t -> match t.decision with Types.Accepted _ -> true | _ -> false)
         transcripts)
  in
  let n = List.length transcripts in
  let total_messages = List.fold_left (fun acc t -> acc + t.messages) 0 transcripts in
  let mean_response_time =
    if n = 0 then 0.0
    else
      List.fold_left (fun acc t -> acc +. (t.client_informed_at -. t.request.Request.ts)) 0.0
        transcripts
      /. float_of_int n
  in
  { transcripts; accepted; rejected = n - accepted; total_messages; mean_response_time }
