(** Ingress enforcement of granted allocations (section 5.4).

    A granted transfer is policed by a token bucket at [bw(r)] MB/s; a
    sender that respects its grant passes untouched while a misbehaving
    (bursty or over-rate) sender sees its excess dropped, protecting the
    other reserved flows.  Senders are modelled as chunk sequences. *)

type chunk = { at : float; bytes : float }
(** [bytes] in MB, emitted at time [at]. *)

type report = {
  offered : float;  (** MB the sender emitted *)
  conformant : float;  (** MB that passed the policer *)
  dropped : float;  (** MB dropped as non-conforming *)
}

val police :
  Gridbw_alloc.Allocation.t -> ?burst:float -> chunk list -> report
(** Run the chunks (must be time-sorted; raises [Invalid_argument]
    otherwise) through a token bucket at the allocation's rate.  [burst]
    defaults to one second worth of the granted rate.  Chunks are dropped
    whole, as in the paper's hardware-assist policer. *)

val well_behaved_sender :
  Gridbw_alloc.Allocation.t -> chunk_seconds:float -> chunk list
(** A sender that emits exactly [bw × chunk_seconds] MB every
    [chunk_seconds] from [sigma] until the volume is exhausted — conforms
    by construction. *)

val bursty_sender :
  Gridbw_prng.Rng.t ->
  Gridbw_alloc.Allocation.t ->
  chunk_seconds:float ->
  overdrive:float ->
  chunk list
(** A sender that tries to push [overdrive × bw] on average with random
    per-chunk jitter in [\[0, 2 × overdrive\]] — exceeds its grant whenever
    [overdrive > 1]. *)
