module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Policy = Gridbw_core.Policy
module Event_queue = Gridbw_sim.Event_queue

type result = {
  total : int;
  accepted : int;
  accept_rate : float;
  egress_violations : int;
  peak_overbooking : float;
  gossip_rounds : int;
}

type release = { ingress : int; egress : int; bw : float }

let run fabric policy ~gossip_interval requests =
  if gossip_interval < 0. then invalid_arg "Distributed.run: negative gossip interval";
  Policy.validate policy;
  List.iter
    (fun (r : Request.t) ->
      if not (Request.routed_on r fabric) then
        invalid_arg (Printf.sprintf "Distributed: request %d routed on unknown port" r.id))
    requests;
  let m = Fabric.ingress_count fabric and n = Fabric.egress_count fabric in
  (* Ground truth (what the network actually carries). *)
  let true_in = Array.make m 0.0 and true_out = Array.make n 0.0 in
  (* Per-router stale view of the egress counters plus own recent grants. *)
  let snapshot = Array.make_matrix m n 0.0 in
  let own_since_snapshot = Array.make_matrix m n 0.0 in
  let releases : release Event_queue.t = Event_queue.create () in
  let last_gossip = ref neg_infinity and gossip_rounds = ref 0 in
  let accepted = ref 0 and violations = ref 0 and peak = ref 0.0 in
  let drain_releases now =
    let rec loop () =
      match Event_queue.peek releases with
      | Some (tau, rel) when tau <= now ->
          ignore (Event_queue.pop releases);
          true_in.(rel.ingress) <- Float.max 0.0 (true_in.(rel.ingress) -. rel.bw);
          true_out.(rel.egress) <- Float.max 0.0 (true_out.(rel.egress) -. rel.bw);
          loop ()
      | _ -> ()
    in
    loop ()
  in
  let gossip now =
    if gossip_interval = 0. || now -. !last_gossip >= gossip_interval then begin
      last_gossip := now;
      incr gossip_rounds;
      for i = 0 to m - 1 do
        for e = 0 to n - 1 do
          snapshot.(i).(e) <- true_out.(e);
          own_since_snapshot.(i).(e) <- 0.0
        done
      done
    end
  in
  let ordered =
    List.sort
      (fun (a : Request.t) (b : Request.t) ->
        match Float.compare a.ts b.ts with 0 -> Int.compare a.id b.id | c -> c)
      requests
  in
  List.iter
    (fun (r : Request.t) ->
      drain_releases r.ts;
      gossip r.ts;
      match Policy.assign policy r ~now:r.ts with
      | None -> ()
      | Some bw ->
          let i = r.ingress and e = r.egress in
          let local_ok = true_in.(i) +. bw <= Fabric.ingress_capacity fabric i *. (1. +. 1e-9) in
          let believed_egress = snapshot.(i).(e) +. own_since_snapshot.(i).(e) in
          let egress_ok = believed_egress +. bw <= Fabric.egress_capacity fabric e *. (1. +. 1e-9) in
          if local_ok && egress_ok then begin
            incr accepted;
            true_in.(i) <- true_in.(i) +. bw;
            true_out.(e) <- true_out.(e) +. bw;
            own_since_snapshot.(i).(e) <- own_since_snapshot.(i).(e) +. bw;
            let over = true_out.(e) /. Fabric.egress_capacity fabric e in
            if over > !peak then peak := over;
            if over > 1. +. 1e-9 then incr violations;
            Event_queue.push releases ~time:(r.ts +. (r.volume /. bw)) { ingress = i; egress = e; bw }
          end)
    ordered;
  let total = List.length requests in
  {
    total;
    accepted = !accepted;
    accept_rate = (if total = 0 then 0.0 else float_of_int !accepted /. float_of_int total);
    egress_violations = !violations;
    peak_overbooking = !peak;
    gossip_rounds = !gossip_rounds;
  }
