(** Overlay control plane (section 5.4).

    Clients talk RSVP-style to their local {e ingress access router}; the
    router holds the admission state for its ports, takes the decision
    locally, broadcasts the grant to the egress access router involved, and
    answers the client directly with the scheduled window and rate.  This
    module simulates that message exchange on top of {!Gridbw_core.Online}
    and measures its cost: decisions happen [hop_latency + decision_latency]
    after the client sends, so tightly-windowed requests can expire in
    flight — the price of a distributed control plane compared to the
    idealised instantaneous GREEDY of Algorithm 2. *)

type config = {
  policy : Gridbw_core.Policy.t;
  hop_latency : float;  (** one-way client↔router and router↔router, s *)
  decision_latency : float;  (** processing time at the ingress router, s *)
}

val default_config : Gridbw_core.Policy.t -> config
(** 5 ms hops, 1 ms decisions. *)

val renegotiation_delay : config -> float
(** Latency between a transfer being preempted and its residual request
    reaching a new admission decision: notify hop + re-signal hop +
    decision ([2·hop_latency + decision_latency]).  Used by the fault
    subsystem to model recovery renegotiation. *)

type transcript = {
  request : Gridbw_request.Request.t;
  decision : Gridbw_core.Types.decision;
  decided_at : float;  (** when the ingress router decided *)
  client_informed_at : float;  (** when the reply reached the client *)
  messages : int;  (** request + broadcast + reply (+ teardown) *)
}

type stats = {
  transcripts : transcript list;  (** in request-id order *)
  accepted : int;
  rejected : int;
  total_messages : int;
  mean_response_time : float;  (** client send → client informed *)
}

val run : Gridbw_topology.Fabric.t -> config -> Gridbw_request.Request.t list -> stats
(** Simulate the whole exchange with a discrete-event engine. *)
