type t = {
  rate : float;
  burst : float;
  mutable level : float;
  mutable last : float;
}

let create ~rate ~burst =
  if rate <= 0. || not (Float.is_finite rate) then
    invalid_arg "Token_bucket.create: rate must be positive and finite";
  if burst <= 0. || not (Float.is_finite burst) then
    invalid_arg "Token_bucket.create: burst must be positive and finite";
  { rate; burst; level = burst; last = neg_infinity }

let rate t = t.rate
let burst t = t.burst

let refill t ~at =
  if at < t.last then invalid_arg "Token_bucket: time moves backwards";
  if Float.is_finite t.last then t.level <- Float.min t.burst (t.level +. (t.rate *. (at -. t.last)));
  t.last <- at

let tokens t ~at =
  refill t ~at;
  t.level

let try_consume t ~at ~amount =
  if amount < 0. then invalid_arg "Token_bucket: negative amount";
  refill t ~at;
  (* Relative slack: chunk times go through float subtraction, so an
     exactly-funded chunk can come up short by an ulp. *)
  if t.level >= amount -. (1e-9 *. Float.max 1.0 amount) then begin
    t.level <- Float.max 0.0 (t.level -. amount);
    true
  end
  else false

let consume_up_to t ~at ~amount =
  if amount < 0. then invalid_arg "Token_bucket: negative amount";
  refill t ~at;
  let granted = Float.min amount t.level in
  t.level <- t.level -. granted;
  granted
