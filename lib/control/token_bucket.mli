(** Token-bucket policer (section 5.4 of the paper).

    The grid overlay enforces each granted allocation at the ingress access
    point: a bucket filling at the granted rate (MB/s) with a bounded burst
    (MB) decides, chunk by chunk, whether traffic conforms to the
    reservation.  Non-conforming chunks are dropped so they cannot hurt
    other reserved flows.  Time must be fed in non-decreasing order. *)

type t

val create : rate:float -> burst:float -> t
(** [rate > 0] MB/s, [burst > 0] MB (the bucket starts full).
    Raises [Invalid_argument] otherwise. *)

val rate : t -> float
val burst : t -> float

val tokens : t -> at:float -> float
(** Token level at time [at], after refill (clamped to [burst]). *)

val try_consume : t -> at:float -> amount:float -> bool
(** Consume [amount] MB at time [at] if the bucket holds enough tokens;
    returns whether it conformed.  A non-conforming chunk consumes
    nothing (it is dropped whole, as in the paper's hardware policer). *)

val consume_up_to : t -> at:float -> amount:float -> float
(** Partial variant: consume as much of [amount] as the bucket allows and
    return the conforming part. *)
