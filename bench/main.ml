(* Benchmark harness:

   1. regenerates every table and figure of the paper (plus the extension
      experiments E5-E9 and ablation A1 of DESIGN.md) with moderate sizes,
      printing the same rows/series the paper reports;
   2. micro-benchmarks the core algorithms with Bechamel (one Test.make per
      experiment kernel).

     dune exec bench/main.exe

   Flags:
     --json PATH          dump the timings as a JSON array
     --only SUBSTRING     skip part 1 and run only the benchmarks whose
                          name contains SUBSTRING (e.g. --only admission)
     --admission-base N   base request count for the admission group
                          (default 400; the x10/x100 targets multiply it)
     --quota SECONDS      Bechamel time budget per benchmark (default 1.0;
                          raise it on noisy machines for tighter OLS fits) *)

open Bechamel
open Toolkit
module Fabric = Gridbw_topology.Fabric
module Request = Gridbw_request.Request
module Spec = Gridbw_workload.Spec
module Gen = Gridbw_workload.Gen
module Rigid = Gridbw_core.Rigid
module Flexible = Gridbw_core.Flexible
module Policy = Gridbw_core.Policy
module Exact = Gridbw_core.Exact
module Npc = Gridbw_core.Npc
module Unit_exact = Gridbw_core.Unit_exact
module Maxmin = Gridbw_baseline.Maxmin
module Fluid = Gridbw_baseline.Fluid
module Profile = Gridbw_alloc.Profile
module Timeline = Gridbw_alloc.Timeline
module Rng = Gridbw_prng.Rng
module Runner = Gridbw_experiments.Runner
module Figure = Gridbw_report.Figure
module Table = Gridbw_report.Table
module Provenance = Gridbw_report.Provenance
module Obs = Gridbw_obs.Obs
module Sink = Gridbw_obs.Sink
module Span = Gridbw_obs.Span
module Flight = Gridbw_obs.Flight
module Runtime = Gridbw_core.Runtime
module Store = Gridbw_store.Store
module Wal = Gridbw_store.Wal
module Malleable = Gridbw_malleable.Malleable

(* --- part 1: regenerate every figure and table --- *)

let params = Runner.with_params ~count:300 ~reps:2 Runner.quick

let regenerate () =
  print_endline "=== part 1: paper figures and tables ===\n";
  let accept, util = Gridbw_experiments.Figure4.run params in
  Figure.print accept;
  Figure.print util;
  Figure.print (Gridbw_experiments.Figure5.run params);
  let h6, u6 = Gridbw_experiments.Figure6.figure6 params in
  Figure.print h6;
  Figure.print u6;
  let h7, u7 = Gridbw_experiments.Figure6.figure7 params in
  Figure.print h7;
  Figure.print u7;
  print_endline "== E5: tuning factor ==";
  Table.print (Gridbw_experiments.Tuning.to_table (Gridbw_experiments.Tuning.run params));
  print_endline "== E6: optimality gap (rigid) ==";
  Table.print (Gridbw_experiments.Optgap.to_table (Gridbw_experiments.Optgap.run params));
  print_endline "== E14: optimality gap (flexible) ==";
  Table.print (Gridbw_experiments.Optgap.to_table (Gridbw_experiments.Optgap.run_flexible params));
  print_endline "== E7: TCP-surrogate comparison ==";
  Table.print
    (Gridbw_experiments.Baseline_cmp.to_table (Gridbw_experiments.Baseline_cmp.run params));
  print_endline "== E8: co-allocation ==";
  Table.print
    (Gridbw_experiments.Coalloc_exp.to_table (Gridbw_experiments.Coalloc_exp.run params));
  print_endline "== E9: Theorem 1 reduction ==";
  Table.print (Gridbw_experiments.Npc_demo.to_table (Gridbw_experiments.Npc_demo.run params));
  print_endline "== E10: long-lived uniform optimum ==";
  Table.print
    (Gridbw_experiments.Long_lived_exp.to_table (Gridbw_experiments.Long_lived_exp.run params));
  print_endline "== E11: distributed allocation ==";
  Table.print
    (Gridbw_experiments.Distributed_exp.to_table
       (Gridbw_experiments.Distributed_exp.run params));
  print_endline "== E12: book-ahead reservations ==";
  Table.print
    (Gridbw_experiments.Bookahead_exp.to_table (Gridbw_experiments.Bookahead_exp.run params));
  print_endline "== E13: raw TCP vs shaped reservations ==";
  Table.print
    (Gridbw_experiments.Transport_exp.to_table (Gridbw_experiments.Transport_exp.run params));
  print_endline "== E15: ample-core assumption stress ==";
  Table.print
    (Gridbw_experiments.Core_stress.to_table (Gridbw_experiments.Core_stress.run params));
  print_endline "== E16: guarantees under faults ==";
  Table.print (Gridbw_experiments.Fault_exp.to_table (Gridbw_experiments.Fault_exp.run params));
  Table.print
    (Gridbw_experiments.Fault_exp.ablation_table
       (Gridbw_experiments.Fault_exp.run_ablation params));
  Figure.print (Gridbw_experiments.Ablation.run params)

(* --- part 2: micro-benchmarks --- *)

let only_filter =
  let rec find = function
    | "--only" :: sub :: _ -> Some sub
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let quota =
  let rec find = function
    | "--quota" :: q :: _ -> float_of_string q
    | _ :: rest -> find rest
    | [] -> 1.0
  in
  find (Array.to_list Sys.argv)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* Fixed inputs, built once: the benchmarks measure the algorithms, not the
   generators. *)
let fabric = Fabric.paper_default ()

let rigid_workload =
  Gen.generate (Rng.create ~seed:1L ())
    (Runner.rigid_spec (Runner.with_params ~count:200 params) ~load:2.0)

let flexible_workload =
  Gen.generate (Rng.create ~seed:2L ())
    (Runner.flexible_spec (Runner.with_params ~count:400 params) ~mean_interarrival:0.4)

let small_rigid =
  let rng = Rng.create ~seed:3L () in
  List.init 13 (fun id ->
      let ts = Rng.float_in rng 0. 30. in
      Request.make_rigid ~id ~ingress:(Rng.int rng 2) ~egress:(Rng.int rng 2)
        ~bw:(Rng.float_in rng 20. 90.) ~ts ~tf:(ts +. Rng.float_in rng 2. 20.))

let small_fabric = Fabric.uniform ~ingress_count:2 ~egress_count:2 ~capacity:100.0
let npc_instance = fst (Npc.reduce (Npc.random (Rng.create ~seed:4L ()) ~n:3 ~extra_triples:2))

let maxmin_flows =
  let rng = Rng.create ~seed:5L () in
  Array.init 200 (fun _ ->
      { Maxmin.ingress = Rng.int rng 10; egress = Rng.int rng 10;
        max_rate = Rng.float_in rng 10. 1000. })

let caps = Array.make 10 1000.0

let fluid_workload =
  Gen.generate (Rng.create ~seed:6L ())
    (Runner.flexible_spec (Runner.with_params ~count:200 params) ~mean_interarrival:0.5)

let fault_script =
  Gridbw_fault.Fault.generate (Rng.create ~seed:11L ()) fabric
    ~horizon:(Gridbw_fault.Fault.horizon_of_requests flexible_workload)
    Gridbw_fault.Fault.default_spec

let fault_config =
  Gridbw_fault.Injector.default_config ~policy:(Policy.Fraction_of_max 0.8) ()

(* --- admission hot-path benchmarks ---

   The WINDOW/GREEDY admission kernels at 10x and 100x the fig5 request
   count, plus a substrate comparison running the exact same
   reserve + max_over sequence against the allocation structure.  These are
   the targets recorded in BENCH_admission.json (see README "Performance"). *)

let admission_base =
  let rec find = function
    | "--admission-base" :: n :: _ -> int_of_string n
    | _ :: rest -> find rest
    | [] -> 400
  in
  find (Array.to_list Sys.argv)

let admission_workload mult =
  Gen.generate
    (Rng.create ~seed:21L ())
    (Runner.flexible_spec
       (Runner.with_params ~count:(admission_base * mult) params)
       ~mean_interarrival:0.4)

let admission_x10 = admission_workload 10
let admission_x100 = admission_workload 100

(* Identical interval/query sequence replayed against each profile
   implementation: reserve n intervals, then one max_over per interval. *)
let maxover_ops =
  let rng = Rng.create ~seed:31L () in
  List.init (admission_base * 10) (fun _ ->
      let from_ = Rng.float_in rng 0. 10_000. in
      (from_, from_ +. Rng.float_in rng 1. 500., Rng.float_in rng 1. 100.))

(* --- telemetry overhead benchmarks ---

   The same GREEDY admission kernel under the three telemetry states:
   disabled ctx (the ?obs default everywhere), metrics-only ctx (counters +
   spans, no event sink), and a JSONL sink writing every event to a buffer.
   BENCH_obs.json records these; the disabled column must stay within noise
   of the plain fig5 kernel. *)

let obs_tests =
  let policy = Policy.Fraction_of_max 0.8 in
  let buf = Buffer.create (1 lsl 20) in
  [
    Test.make ~name:"obs:greedy-disabled"
      (Staged.stage (fun () -> Flexible.greedy fabric policy flexible_workload));
    Test.make ~name:"obs:greedy-metrics-noop"
      (Staged.stage (fun () ->
           Flexible.greedy
             ~ctx:(Runtime.make ~obs:(Obs.create ()) ())
             fabric policy flexible_workload));
    Test.make ~name:"obs:greedy-jsonl-buffer"
      (Staged.stage (fun () ->
           Buffer.clear buf;
           Flexible.greedy
             ~ctx:(Runtime.make ~obs:(Obs.create ~sink:(Sink.jsonl_buffer buf) ()) ())
             fabric policy flexible_workload));
    Test.make ~name:"obs:window-disabled"
      (Staged.stage (fun () ->
           Flexible.window fabric policy ~step:400. flexible_workload));
    Test.make ~name:"obs:window-jsonl-buffer"
      (Staged.stage (fun () ->
           Buffer.clear buf;
           Flexible.window
             ~ctx:(Runtime.make ~obs:(Obs.create ~sink:(Sink.jsonl_buffer buf) ()) ())
             fabric policy ~step:400. flexible_workload));
  ]

(* --- span tracing overhead benchmarks ---

   The per-request cost of the serve path's trace spans, isolated from
   the serve loop: open/record/finish one span, encode it in each wire
   form, and persist it to the flight-recorder ring.  BENCH_obs.json
   records these; the lifecycle cost bounds what `--span-out` can add
   per request. *)

let span_tests =
  let buf = Buffer.create 256 in
  let flight_path = Filename.temp_file "gridbw-bench-flight" ".bin" in
  at_exit (fun () -> if Sys.file_exists flight_path then Sys.remove flight_path);
  let flight = lazy (Flight.create ~size:(1 lsl 16) flight_path) in
  let finished =
    let sp = Span.start ~conn:1 () in
    Span.set_req sp 42;
    List.iter (fun st -> Span.record sp st 123.) Span.all_stages;
    Span.finish sp;
    sp
  in
  [
    Test.make ~name:"span:lifecycle"
      (Staged.stage (fun () ->
           let sp = Span.start ~conn:1 () in
           Span.set_req sp 42;
           List.iter (fun st -> Span.timed (Some sp) st (fun () -> ())) Span.all_stages;
           Span.finish sp;
           Span.total_ns sp));
    Test.make ~name:"span:binary-encode"
      (Staged.stage (fun () ->
           Buffer.clear buf;
           Span.Binary.encode buf finished;
           Buffer.length buf));
    Test.make ~name:"span:jsonl-encode"
      (Staged.stage (fun () -> String.length (Span.to_json finished)));
    Test.make ~name:"span:flight-append"
      (Staged.stage (fun () -> Flight.append (Lazy.force flight) finished));
  ]

(* --- durable store benchmarks ---

   The same GREEDY admission kernel with the write-ahead journal off and
   on (group commit at the default batch=64 and the worst-case batch=1),
   plus recovery replay of a full journal.  BENCH_store.json records
   these; README "Durability" quotes the group-commit claim: the journal
   overhead at batch=64 (wal-batch64 minus wal-off) must stay under 10%
   of the fsync-per-record overhead (wal-batch1 minus wal-off) — group
   commit amortises the fsync, it cannot make durability free.  Each
   iteration journals one run into a fresh directory: reusing one store
   would grow its mirror ledger and event history across iterations and
   skew the time-boxed runs unevenly. *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let store_tests =
  let policy = Policy.Fraction_of_max 0.8 in
  let root =
    let dir = Filename.temp_file "gridbw-bench-store" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    at_exit (fun () -> if Sys.file_exists dir then rm_rf dir);
    dir
  in
  let store_at ~batch name =
    Store.create
      ~config:
        { Store.default_config with
          wal = { Wal.default_config with Wal.batch };
          snapshot_bytes = max_int }
      ~dir:(Filename.concat root name) fabric
  in
  let seq = ref 0 in
  let journaled_run ~batch () =
    incr seq;
    let name = Printf.sprintf "wal%d-%d" batch !seq in
    let s = store_at ~batch name in
    let r = Flexible.greedy ~ctx:(Runtime.make ~store:s ()) fabric policy flexible_workload in
    Store.close s;
    rm_rf (Filename.concat root name);
    r
  in
  let recover_dir = Filename.concat root "recover" in
  let seeded =
    lazy
      (let s = store_at ~batch:64 "recover" in
       ignore (Flexible.greedy ~ctx:(Runtime.make ~store:s ()) fabric policy flexible_workload);
       Store.close s)
  in
  [
    Test.make ~name:"store:greedy-wal-off"
      (Staged.stage (fun () -> Flexible.greedy fabric policy flexible_workload));
    Test.make ~name:"store:greedy-wal-batch64" (Staged.stage (journaled_run ~batch:64));
    Test.make ~name:"store:greedy-wal-batch1" (Staged.stage (journaled_run ~batch:1));
    Test.make ~name:"store:recover-full-journal"
      (Staged.stage (fun () ->
           Lazy.force seeded;
           match Store.recover ~dir:recover_dir () with
           | Ok r -> Store.close r.Store.store
           | Error msg -> failwith msg));
  ]

(* --- malleable engine benchmarks ---

   The step-profile water-fill admission kernel: the pure solve at 10x
   the fig5 request count (reshape disabled — isolates the water-fill
   from the EDF re-solve), and the reshape and booking modes on a
   dedicated overloaded 100-request workload.  Every failed admit
   re-solves the whole not-yet-started pending set on a scratch ledger,
   so the reshape kernels are quadratic-ish in the workload — they get a
   small fixed input rather than the x10 one.  BENCH_malleable.json
   records these; scripts/bench_delta.py gates the solve kernel against
   the GREEDY x100 reference so the quotient is machine-normalized. *)

let malleable_workload =
  Gen.generate (Rng.create ~seed:22L ())
    (Runner.flexible_spec (Runner.with_params ~count:100 params) ~mean_interarrival:0.4)

let malleable_tests =
  [
    Test.make ~name:"malleable:no-reshape-x10"
      (Staged.stage (fun () ->
           Malleable.run { Malleable.default with Malleable.reshape = false } fabric
             admission_x10));
    Test.make ~name:"malleable:reshape-100"
      (Staged.stage (fun () -> Malleable.run Malleable.default fabric malleable_workload));
    Test.make ~name:"malleable:bookahead-100"
      (Staged.stage (fun () ->
           Malleable.run { Malleable.default with Malleable.book_ahead = 30. } fabric
             malleable_workload));
  ]

let admission_tests =
  [
    Test.make ~name:"admission:window-x10"
      (Staged.stage (fun () ->
           Flexible.window fabric (Policy.Fraction_of_max 1.0) ~step:400. admission_x10));
    Test.make ~name:"admission:window-x100"
      (Staged.stage (fun () ->
           Flexible.window fabric (Policy.Fraction_of_max 1.0) ~step:400. admission_x100));
    Test.make ~name:"admission:greedy-x100"
      (Staged.stage (fun () ->
           Flexible.greedy fabric (Policy.Fraction_of_max 1.0) admission_x100));
    Test.make ~name:"admission:profile-ref-maxover"
      (Staged.stage (fun () ->
           let p =
             List.fold_left
               (fun p (f, u, bw) -> Profile.add p ~from_:f ~until:u bw)
               Profile.empty maxover_ops
           in
           List.fold_left
             (fun acc (f, u, _) -> acc +. Profile.max_over p ~from_:f ~until:u)
             0. maxover_ops));
    Test.make ~name:"admission:timeline-maxover"
      (Staged.stage (fun () ->
           let t = Timeline.create () in
           List.iter (fun (f, u, bw) -> Timeline.add t ~from_:f ~until:u bw) maxover_ops;
           List.fold_left
             (fun acc (f, u, _) -> acc +. Timeline.max_over t ~from_:f ~until:u)
             0. maxover_ops));
  ]

let base_tests =
    [
      (* one kernel per paper table/figure *)
      Test.make ~name:"fig4:fcfs" (Staged.stage (fun () -> Rigid.fcfs fabric rigid_workload));
      Test.make ~name:"fig4:cumulated-slots"
        (Staged.stage (fun () -> Rigid.slots ~cost:Rigid.Cumulated fabric rigid_workload));
      Test.make ~name:"fig4:minbw-slots"
        (Staged.stage (fun () -> Rigid.slots ~cost:Rigid.Min_bw fabric rigid_workload));
      Test.make ~name:"fig4:minvol-slots"
        (Staged.stage (fun () -> Rigid.slots ~cost:Rigid.Min_vol fabric rigid_workload));
      Test.make ~name:"fig5:greedy"
        (Staged.stage (fun () ->
             Flexible.greedy fabric (Policy.Fraction_of_max 1.0) flexible_workload));
      Test.make ~name:"fig5:window-400"
        (Staged.stage (fun () ->
             Flexible.window fabric (Policy.Fraction_of_max 1.0) ~step:400. flexible_workload));
      Test.make ~name:"fig6:greedy-minrate"
        (Staged.stage (fun () -> Flexible.greedy fabric Policy.Min_rate flexible_workload));
      Test.make ~name:"fig7:window-400-f08"
        (Staged.stage (fun () ->
             Flexible.window fabric (Policy.Fraction_of_max 0.8) ~step:400. flexible_workload));
      Test.make ~name:"ablation:window-deferred"
        (Staged.stage (fun () ->
             Flexible.window_deferred fabric (Policy.Fraction_of_max 1.0) ~step:40.
               flexible_workload));
      Test.make ~name:"e6:exact-branch-and-bound"
        (Staged.stage (fun () -> Exact.max_requests small_fabric small_rigid));
      Test.make ~name:"e7:fluid-maxmin-simulation"
        (Staged.stage (fun () -> Fluid.simulate fabric fluid_workload));
      Test.make ~name:"e9:unit-exact-npc-n3"
        (Staged.stage (fun () -> Unit_exact.solve npc_instance));
      (* substrate kernels *)
      Test.make ~name:"maxmin:rates-200-flows"
        (Staged.stage (fun () -> Maxmin.rates ~caps_in:caps ~caps_out:caps maxmin_flows));
      Test.make ~name:"alloc:profile-100-reservations"
        (Staged.stage (fun () ->
             let p = ref Profile.empty in
             for i = 0 to 99 do
               let t = float_of_int (i mod 17) in
               p := Profile.add !p ~from_:t ~until:(t +. 5.) 10.
             done;
             Profile.peak !p));
      Test.make ~name:"sim:event-queue-1k"
        (Staged.stage (fun () ->
             let q = Gridbw_sim.Event_queue.create () in
             for i = 0 to 999 do
               Gridbw_sim.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) i
             done;
             Gridbw_sim.Event_queue.drain q));
      Test.make ~name:"e10:longlived-maxflow-200"
        (Staged.stage
           (let rng0 = Rng.create ~seed:10L () in
            let lreqs =
              List.init 200 (fun id ->
                  Gridbw_core.Long_lived.request ~id ~ingress:(Rng.int rng0 10)
                    ~egress:(Rng.int rng0 10) ~bw:300.)
            in
            fun () -> Gridbw_core.Long_lived.optimal_uniform fabric ~bw:300. lreqs));
      Test.make ~name:"e16:injector-greedy-faults"
        (Staged.stage (fun () ->
             Gridbw_fault.Injector.run fabric fault_config fault_script flexible_workload));
      Test.make ~name:"prng:10k-draws"
        (Staged.stage
           (let rng = Rng.create ~seed:9L () in
            fun () ->
              let acc = ref 0. in
              for _ = 1 to 10_000 do
                acc := !acc +. Rng.float rng 1.0
              done;
              !acc));
    ]

let tests =
  let all =
    base_tests @ admission_tests @ malleable_tests @ obs_tests @ span_tests @ store_tests
  in
  let selected =
    match only_filter with
    | None -> all
    | Some sub -> List.filter (fun t -> contains ~sub (Test.name t)) all
  in
  if selected = [] then (
    Printf.eprintf "no benchmark matches --only %s\n" (Option.get only_filter);
    exit 1);
  Test.make_grouped ~name:"gridbw" ~fmt:"%s %s" selected

let run_benchmarks () =
  print_endline "\n=== part 2: micro-benchmarks (Bechamel) ===\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (List.hd instances) raw in
  let timings =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns_per_run =
          match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
        in
        (name, ns_per_run) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let rows =
    List.map
      (fun (name, ns) ->
        let time =
          if Float.is_nan ns then "n/a"
          else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        [ name; time ])
      timings
  in
  Table.print (Table.make ~headers:[ "benchmark"; "time/run" ] rows);
  timings

(* JSON string escaping per RFC 8259 (benchmark names are plain ASCII, but
   be safe about quotes/backslashes/control characters). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path timings =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  {\"name\": \"%s\", \"ns_per_run\": %s}%s\n" (json_escape name)
        (if Float.is_nan ns then "null" else Printf.sprintf "%.3f" ns)
        (if i < List.length timings - 1 then "," else ""))
    timings;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %d timings to %s\n" (List.length timings) path

let json_out =
  let rec find = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

let () =
  Provenance.print ~cmd:"bench"
    [ Provenance.seed params.Runner.seed; Provenance.int "count" params.Runner.count;
      Provenance.int "reps" params.Runner.reps;
      Provenance.int "admission-base" admission_base;
      ("admission-seed", "21") ];
  if only_filter = None then regenerate ();
  let timings = run_benchmarks () in
  Option.iter (fun path -> write_json path timings) json_out
